//! The VG-function interface and the built-in VG functions.
//!
//! Paper §1: "a VG function takes as input one or more parameter tables
//! (ordinary relations) that control the function's behavior, and produces as
//! output a table containing one or more correlated data values."  §2 shows
//! the built-in `Normal` VG function parameterized by a per-customer mean.
//!
//! A [`VgFunction`] here receives the *parameter row* (the values the schema
//! statement binds in its `VALUES(...)` clause) plus a deterministic
//! sub-generator for the current stream position, and returns the rows of
//! its output table.  Determinism contract: the same parameters and the same
//! generator state always produce the same output — this is what allows
//! MCDB-R to re-create any previously generated value during replenishment
//! runs (paper §9) and to treat stream positions as the unit of Gibbs
//! perturbation (paper §4.2, §6).

use std::fmt;

use mcdbr_prng::{Pcg64, RandomStream, SeedId};
use mcdbr_storage::{ColumnBlock, Error, Field, Result, Tuple, Value};

use crate::dist::Distribution;
use crate::math::std_normal_quantile;

/// A variable-generation function.
///
/// Implementations must be deterministic given `(params, gen)` and must not
/// retain state between calls: MCDB-R may invoke them out of order, once per
/// stream position, and from multiple bootstrapping iterations.
pub trait VgFunction: fmt::Debug + Send + Sync {
    /// Human-readable name used in plans and error messages.
    fn name(&self) -> &str;

    /// A token identifying this VG function *and its construction-time
    /// configuration* for plan-fingerprinting purposes: two VG functions with
    /// equal tokens must generate identical output given identical
    /// `(params, gen)` inputs.  Stateless implementations return their
    /// [`VgFunction::name`]; implementations with constructor state
    /// (category lists, dimensions, step counts, ...) must fold that state
    /// in, or structurally different plans would collide in plan-keyed
    /// session caches and silently serve each other's cached skeletons.
    /// The method is deliberately required (no default) so the compiler
    /// forces every implementation to make this decision explicitly.
    fn cache_token(&self) -> String;

    /// The schema of the (small) table one invocation produces.
    fn output_fields(&self) -> Vec<Field>;

    /// Produce one instantiation of the uncertain value(s).
    ///
    /// `params` is the parameter row bound by the uncertain-table definition
    /// (e.g. `[m, 1.0]` for the `Normal(VALUES(m, 1.0))` of paper §2), and
    /// `gen` is the deterministic sub-generator for the current stream
    /// position.
    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>>;

    /// Downcasting hook for wire serialization: the built-in VG functions
    /// return `Some(self)` so a process dispatcher can recognize them and
    /// ship their construction-time configuration to worker processes.
    /// Third-party VG functions may keep the default `None` — plans using
    /// them simply aren't wire-serializable and execute locally.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Batched generation: materialize stream positions `base_pos ..
    /// base_pos + num_values` directly into a columnar block.
    ///
    /// The value contract is **bit-exact equality** with the per-position
    /// path: for every position `p`, the values written must be identical to
    /// what [`VgFunction::generate`] produces from the sub-generator at
    /// `(seed, p)` — the batched path is an allocation optimization, never a
    /// semantic one.  The default implementation *is* the per-position path
    /// (one `generate` call per position, appended row-wise), so third-party
    /// VG functions keep working unchanged; the built-in VG functions
    /// override it to parse parameters once and push scalars straight into
    /// the typed buffers.
    ///
    /// Implementations must leave `out` holding exactly `num_values`
    /// positions in every column of a uniform `rows × cols` shape (callers
    /// validate once per block via [`ColumnBlock::validate`]).
    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        out.clear();
        let stream = RandomStream::new(seed);
        for i in 0..num_values {
            let mut gen = stream.generator_at(base_pos + i as u64);
            let rows = self.generate(params, &mut gen)?;
            out.push_position(&rows)?;
        }
        Ok(())
    }
}

fn param_f64(params: &[Value], idx: usize, name: &str, fn_name: &str) -> Result<f64> {
    params
        .get(idx)
        .ok_or_else(|| Error::Invalid(format!("{fn_name}: missing parameter {idx} ({name})")))?
        .as_f64()
}

/// Drive a native batched generation loop for a single-cell (`1 × 1`) VG
/// function: shape the block, then write `sample(gen)` for every position's
/// sub-generator.  `sample` must consume the generator exactly as the
/// scalar [`VgFunction::generate`] path does — that is the whole bit-exact
/// `(seed, position)` → value contract.
fn scalar_block_into(
    seed: SeedId,
    base_pos: u64,
    num_values: usize,
    out: &mut ColumnBlock,
    mut sample: impl FnMut(&mut Pcg64) -> f64,
) {
    out.reset(1, 1, num_values);
    let stream = RandomStream::new(seed);
    let col = out.column_mut(0, 0);
    for i in 0..num_values {
        let mut gen = stream.generator_at(base_pos + i as u64);
        col.push_f64(sample(&mut gen));
    }
}

/// Two-pass batched driver for single-cell VG functions whose sample is a
/// pure transform of exactly one stream uniform: pass 1 writes each
/// position's uniform straight into the column's `f64` buffer, pass 2
/// transforms the buffer in place.
///
/// Pass 1 consumes each position's sub-generator exactly as the scalar
/// [`VgFunction::generate`] path does — one `next_f64` (or `next_f64_open`)
/// per position — so the uniforms, and therefore the transformed values, are
/// bit-identical to the scalar path *by construction*.  Pass 2 is a tight,
/// allocation-free loop over one contiguous slice with no generator state in
/// scope, which the compiler unrolls (and vectorizes where the math allows)
/// far better than the interleaved generate-then-transform loop.
fn two_pass_block_into(
    seed: SeedId,
    base_pos: u64,
    num_values: usize,
    out: &mut ColumnBlock,
    open_interval: bool,
    transform: impl FnOnce(&mut [f64]),
) {
    out.reset(1, 1, num_values);
    let stream = RandomStream::new(seed);
    let col = out.column_mut(0, 0);
    let slots = col
        .extend_f64_values((0..num_values).map(|i| {
            let mut gen = stream.generator_at(base_pos + i as u64);
            if open_interval {
                gen.next_f64_open()
            } else {
                gen.next_f64()
            }
        }))
        .expect("reset cleared the column, so it retypes to Float64");
    transform(slots);
}

/// The built-in `Normal` VG function of paper §2.
///
/// Parameters: `[mean, variance]`.  Produces a single row with a single
/// `value` column.  Sampling is inverse-CDF, so one stream uniform maps
/// monotonically to one loss value — exactly the "stream of realized loss
/// values" of §4.1.
#[derive(Debug, Clone, Default)]
pub struct NormalVg;

impl VgFunction for NormalVg {
    fn name(&self) -> &str {
        "Normal"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        self.name().to_string()
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::float64("value")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let mean = param_f64(params, 0, "mean", "Normal")?;
        let variance = param_f64(params, 1, "variance", "Normal")?;
        if variance < 0.0 {
            return Err(Error::Invalid(format!(
                "Normal: negative variance {variance}"
            )));
        }
        let value = Distribution::Normal {
            mean,
            sd: variance.sqrt(),
        }
        .sample(gen);
        Ok(vec![Tuple::from_iter_values([value])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        // Parameters are parsed and validated once per block, not per
        // position; the draws themselves are bit-identical to `generate`.
        let mean = param_f64(params, 0, "mean", "Normal")?;
        let variance = param_f64(params, 1, "variance", "Normal")?;
        if variance < 0.0 {
            return Err(Error::Invalid(format!(
                "Normal: negative variance {variance}"
            )));
        }
        let sd = variance.sqrt();
        // Two-pass: uniforms first, then the inverse-CDF transform in place.
        // `Distribution::Normal::sample` is `mean + sd * Φ⁻¹(next_f64_open())`,
        // reproduced term for term below.
        two_pass_block_into(seed, base_pos, num_values, out, true, |vals| {
            for v in vals {
                *v = mean + sd * std_normal_quantile(*v);
            }
        });
        Ok(())
    }
}

/// Uniform VG function.  Parameters: `[lo, hi]`.
#[derive(Debug, Clone, Default)]
pub struct UniformVg;

impl VgFunction for UniformVg {
    fn name(&self) -> &str {
        "Uniform"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        self.name().to_string()
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::float64("value")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let lo = param_f64(params, 0, "lo", "Uniform")?;
        let hi = param_f64(params, 1, "hi", "Uniform")?;
        if hi < lo {
            return Err(Error::Invalid(format!("Uniform: hi {hi} < lo {lo}")));
        }
        let value = Distribution::Uniform { lo, hi }.sample(gen);
        Ok(vec![Tuple::from_iter_values([value])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let lo = param_f64(params, 0, "lo", "Uniform")?;
        let hi = param_f64(params, 1, "hi", "Uniform")?;
        if hi < lo {
            return Err(Error::Invalid(format!("Uniform: hi {hi} < lo {lo}")));
        }
        // `Distribution::Uniform::sample` is `lo + (hi - lo) * next_f64()`,
        // reproduced term for term in the in-place pass.
        two_pass_block_into(seed, base_pos, num_values, out, false, |vals| {
            for v in vals {
                *v = lo + (hi - lo) * *v;
            }
        });
        Ok(())
    }
}

/// Poisson VG function (e.g. order quantities).  Parameters: `[lambda]`.
#[derive(Debug, Clone, Default)]
pub struct PoissonVg;

impl VgFunction for PoissonVg {
    fn name(&self) -> &str {
        "Poisson"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        self.name().to_string()
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::float64("value")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let lambda = param_f64(params, 0, "lambda", "Poisson")?;
        if lambda < 0.0 {
            return Err(Error::Invalid(format!("Poisson: negative mean {lambda}")));
        }
        let value = Distribution::Poisson { lambda }.sample(gen);
        Ok(vec![Tuple::from_iter_values([value])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let lambda = param_f64(params, 0, "lambda", "Poisson")?;
        if lambda < 0.0 {
            return Err(Error::Invalid(format!("Poisson: negative mean {lambda}")));
        }
        let dist = Distribution::Poisson { lambda };
        scalar_block_into(seed, base_pos, num_values, out, |gen| dist.sample(gen));
        Ok(())
    }
}

/// A VG function that samples one of a fixed set of categories.
///
/// Parameters: one weight per category (non-negative, not all zero).  The
/// output row contains the chosen category value.  This is the MCDB analogue
/// of the explicit tuple-alternative probabilities of classical probabilistic
/// databases (paper §1 related work).
#[derive(Debug, Clone)]
pub struct DiscreteVg {
    categories: Vec<Value>,
}

impl DiscreteVg {
    /// Create a discrete VG function over the given category values.
    pub fn new(categories: Vec<Value>) -> Self {
        DiscreteVg { categories }
    }

    /// The category values, in construction order (wire serialization ships
    /// these to worker processes).
    pub fn categories(&self) -> &[Value] {
        &self.categories
    }

    /// Parse and validate the per-call weights (one per category).
    fn weights(&self, params: &[Value]) -> Result<(Vec<f64>, f64)> {
        discrete_weights("Discrete", self.categories.len(), params)
    }

    /// Sample a category index from the weights (floating-point edge: the
    /// last category).  Consumes exactly one uniform from `gen`.
    fn choose(weights: &[f64], total: f64, gen: &mut Pcg64) -> usize {
        Self::choose_from(weights, total, gen.next_f64())
    }

    /// The subtractive scan over a raw `[0,1)` uniform.  The sequential
    /// `u -= w` rounding is part of the on-disk value contract — a
    /// cumulative-sum binary search would round differently near category
    /// boundaries — so the batched path reuses exactly this scan.
    fn choose_from(weights: &[f64], total: f64, u01: f64) -> usize {
        let mut u = u01 * total;
        for (idx, w) in weights.iter().enumerate() {
            if u < *w {
                return idx;
            }
            u -= w;
        }
        weights.len() - 1
    }
}

/// Shared weight validation for the discrete samplers: one non-negative
/// weight per category, not all zero.
pub(crate) fn discrete_weights(
    fn_name: &str,
    num_categories: usize,
    params: &[Value],
) -> Result<(Vec<f64>, f64)> {
    if params.len() != num_categories {
        return Err(Error::Invalid(format!(
            "{fn_name}: expected {num_categories} weights, got {}",
            params.len()
        )));
    }
    let weights: Vec<f64> = params
        .iter()
        .map(|v| v.as_f64())
        .collect::<Result<Vec<_>>>()?;
    if weights.iter().any(|&w| w < 0.0) {
        return Err(Error::Invalid(format!("{fn_name}: negative weight")));
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(Error::Invalid(format!("{fn_name}: weights sum to zero")));
    }
    Ok((weights, total))
}

/// Unambiguous category-list serialization shared by the discrete samplers'
/// cache tokens: a type tag per category plus a length prefix for strings.
/// Plain `Display` would collide `Int64(1)` with `Float64(1.0)` and
/// `["a,b"]` with `["a", "b"]`, and a fingerprint collision makes a
/// plan-keyed session cache serve the wrong skeleton silently.
pub(crate) fn categories_token(prefix: &str, categories: &[Value]) -> String {
    use std::fmt::Write;
    let mut token = String::from(prefix);
    for c in categories {
        match c {
            Value::Null => token.push_str("|n"),
            Value::Int64(i) => {
                let _ = write!(token, "|i{i}");
            }
            Value::Float64(x) => {
                let _ = write!(token, "|f{:016x}", x.to_bits());
            }
            Value::Bool(b) => {
                let _ = write!(token, "|b{}", u8::from(*b));
            }
            Value::Utf8(s) => {
                let _ = write!(token, "|s{}:{s}", s.len());
            }
        }
    }
    token
}

impl VgFunction for DiscreteVg {
    fn name(&self) -> &str {
        "Discrete"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        categories_token("Discrete", &self.categories)
    }

    fn output_fields(&self) -> Vec<Field> {
        let dt = self
            .categories
            .first()
            .map(|v| v.data_type())
            .unwrap_or(mcdbr_storage::DataType::Null);
        vec![Field::new("value", dt)]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let (weights, total) = self.weights(params)?;
        let chosen = Self::choose(&weights, total, gen);
        // Category values are Arc-backed, so this clone is a refcount bump
        // even for string categories — never a byte copy.
        Ok(vec![Tuple::new(vec![self.categories[chosen].clone()])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let (weights, total) = self.weights(params)?;
        out.reset(1, 1, num_values);
        let stream = RandomStream::new(seed);
        // Pass 1: raw uniforms only — the generator loop stays tight.
        let uniforms: Vec<f64> = (0..num_values)
            .map(|i| stream.generator_at(base_pos + i as u64).next_f64())
            .collect();
        let col = out.column_mut(0, 0);
        // Pass 2: the subtractive scan plus the column push.  String
        // categories are interned once up front; each sampled row then
        // stores a dictionary index — no per-row clone, no per-row hash
        // lookup.  Mixed or non-string category lists fall back to the
        // generic value push (still cheap: scalars copy, strings intern).
        let all_utf8 = self.categories.iter().all(|c| matches!(c, Value::Utf8(_)));
        if all_utf8 && !self.categories.is_empty() {
            let ids: Vec<u32> = self
                .categories
                .iter()
                .map(|c| col.intern_utf8(c.as_str().expect("checked Utf8")))
                .collect::<Result<_>>()?;
            for &u in &uniforms {
                col.push_utf8_id(ids[Self::choose_from(&weights, total, u)])?;
            }
        } else {
            for &u in &uniforms {
                col.push_value(&self.categories[Self::choose_from(&weights, total, u)]);
            }
        }
        Ok(())
    }
}

/// A `Normal` sampler variant using the batched Box–Muller transform instead
/// of the inverse CDF.
///
/// Box–Muller maps *two* uniforms to one normal deviate with `ln`/`sqrt`/
/// `cos` — much cheaper than the default sampler's Acklam quantile plus
/// Halley refinement (two `erf` evaluations per value) — but the
/// uniform-to-value mapping necessarily differs from the inverse CDF, so
/// this is a distinct VG *configuration* with its own [`VgFunction::
/// cache_token`]: plans choose it explicitly, and streams generated by one
/// sampler are never served from a cache keyed by the other.  Within the
/// variant the batched path is bit-identical to its scalar path, which is
/// the contract the determinism suite enforces for every VG.
///
/// Parameters: `[mean, variance]`, exactly as [`NormalVg`].
#[derive(Debug, Clone, Default)]
pub struct BoxMullerNormalVg;

/// The shared Box–Muller transform: both the scalar and batched paths fold
/// the two uniforms through this one expression, making bit-identity across
/// paths true by construction.
#[inline]
fn box_muller(u1: f64, u2: f64, mean: f64, sd: f64) -> f64 {
    mean + sd * ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos())
}

impl BoxMullerNormalVg {
    fn params(params: &[Value]) -> Result<(f64, f64)> {
        let mean = param_f64(params, 0, "mean", "NormalBoxMuller")?;
        let variance = param_f64(params, 1, "variance", "NormalBoxMuller")?;
        if variance < 0.0 {
            return Err(Error::Invalid(format!(
                "NormalBoxMuller: negative variance {variance}"
            )));
        }
        Ok((mean, variance.sqrt()))
    }
}

impl VgFunction for BoxMullerNormalVg {
    fn name(&self) -> &str {
        "NormalBoxMuller"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        self.name().to_string()
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::float64("value")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let (mean, sd) = Self::params(params)?;
        // Uniform order is the contract: u1 open (ln(0) guard), then u2.
        let u1 = gen.next_f64_open();
        let u2 = gen.next_f64();
        Ok(vec![Tuple::from_iter_values([box_muller(
            u1, u2, mean, sd,
        )])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let (mean, sd) = Self::params(params)?;
        out.reset(1, 1, num_values);
        let stream = RandomStream::new(seed);
        let col = out.column_mut(0, 0);
        // Two passes — uniforms first, transform second — so the transform
        // loop runs over contiguous slices with no PRNG dependency chain
        // interleaved.  The second-uniform scratch is thread-local and reused
        // across blocks: steady-state batched generation allocates nothing.
        thread_local! {
            static U2_SCRATCH: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        U2_SCRATCH.with(|scratch| {
            let mut u2 = scratch.borrow_mut();
            u2.clear();
            u2.reserve(num_values);
            // Pass 1: both uniforms per position, in scalar-path order,
            // each written exactly once (no zero-fill).
            let slots = col
                .extend_f64_values((0..num_values).map(|i| {
                    let mut gen = stream.generator_at(base_pos + i as u64);
                    let u1 = gen.next_f64_open();
                    u2.push(gen.next_f64());
                    u1
                }))
                .expect("reset cleared the column, so it retypes to Float64");
            // Pass 2: the transform over two contiguous slices.
            for (slot, &u) in slots.iter_mut().zip(u2.iter()) {
                *slot = box_muller(*slot, u, mean, sd);
            }
        });
        Ok(())
    }
}

/// A correlated multivariate-normal VG function with equicorrelation `rho`.
///
/// One invocation produces `dim` rows `(component, value)` — the "table
/// containing one or more correlated data values" of paper §1.  Parameters:
/// `[mean, sd]` shared by every component.  The correlation is induced by a
/// one-factor model: `X_i = mean + sd (√rho · Z₀ + √(1-rho) · Z_i)`.
#[derive(Debug, Clone)]
pub struct MultiNormalVg {
    dim: usize,
    rho: f64,
}

impl MultiNormalVg {
    /// Create a `dim`-dimensional equicorrelated normal VG function.
    pub fn new(dim: usize, rho: f64) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
        MultiNormalVg { dim, rho }
    }

    /// The output dimension fixed at construction.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The equicorrelation coefficient fixed at construction.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl VgFunction for MultiNormalVg {
    fn name(&self) -> &str {
        "MultiNormal"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        format!("MultiNormal[dim={},rho={}]", self.dim, self.rho)
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::int64("component"), Field::float64("value")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let mean = param_f64(params, 0, "mean", "MultiNormal")?;
        let sd = param_f64(params, 1, "sd", "MultiNormal")?;
        if sd < 0.0 {
            return Err(Error::Invalid(format!("MultiNormal: negative sd {sd}")));
        }
        let z0 = std_normal_quantile(gen.next_f64_open());
        let mut rows = Vec::with_capacity(self.dim);
        for i in 0..self.dim {
            let zi = std_normal_quantile(gen.next_f64_open());
            let x = mean + sd * (self.rho.sqrt() * z0 + (1.0 - self.rho).sqrt() * zi);
            rows.push(Tuple::from_iter_values([
                Value::Int64(i as i64),
                Value::Float64(x),
            ]));
        }
        Ok(rows)
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let mean = param_f64(params, 0, "mean", "MultiNormal")?;
        let sd = param_f64(params, 1, "sd", "MultiNormal")?;
        if sd < 0.0 {
            return Err(Error::Invalid(format!("MultiNormal: negative sd {sd}")));
        }
        let (w0, wi) = (self.rho.sqrt(), (1.0 - self.rho).sqrt());
        out.reset(self.dim, 2, num_values);
        let stream = RandomStream::new(seed);
        for i in 0..num_values {
            // Uniform consumption order matches `generate` exactly: one z0,
            // then one zi per component, per position.
            let mut gen = stream.generator_at(base_pos + i as u64);
            let z0 = std_normal_quantile(gen.next_f64_open());
            for d in 0..self.dim {
                let zi = std_normal_quantile(gen.next_f64_open());
                let x = mean + sd * (w0 * z0 + wi * zi);
                out.column_mut(d, 0).push_i64(d as i64);
                out.column_mut(d, 1).push_f64(x);
            }
        }
        Ok(())
    }
}

/// A Bayesian demand model: demand under a hypothetical price change.
///
/// The intro of the paper motivates "customer order quantities under
/// hypothetical price changes ... specified via Bayesian demand models".
/// Here the latent demand rate has a `Gamma(shape, scale)` prior, the price
/// change scales it through a constant-elasticity term, and observed demand
/// is Poisson around the scaled rate:
///
/// ```text
/// rate   ~ Gamma(shape, scale)
/// demand ~ Poisson(rate · exp(-elasticity · price_change))
/// ```
///
/// Parameters: `[shape, scale, elasticity, price_change]`.  Output: one row
/// with a `demand` column.
#[derive(Debug, Clone, Default)]
pub struct BayesianDemandVg;

impl VgFunction for BayesianDemandVg {
    fn name(&self) -> &str {
        "BayesianDemand"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        self.name().to_string()
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::float64("demand")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let shape = param_f64(params, 0, "shape", "BayesianDemand")?;
        let scale = param_f64(params, 1, "scale", "BayesianDemand")?;
        let elasticity = param_f64(params, 2, "elasticity", "BayesianDemand")?;
        let price_change = param_f64(params, 3, "price_change", "BayesianDemand")?;
        if shape <= 0.0 || scale <= 0.0 {
            return Err(Error::Invalid(
                "BayesianDemand: shape and scale must be positive".into(),
            ));
        }
        let rate = Distribution::Gamma { shape, scale }.sample(gen);
        let scaled = rate * (-elasticity * price_change).exp();
        let demand = Distribution::Poisson { lambda: scaled }.sample(gen);
        Ok(vec![Tuple::from_iter_values([demand])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let shape = param_f64(params, 0, "shape", "BayesianDemand")?;
        let scale = param_f64(params, 1, "scale", "BayesianDemand")?;
        let elasticity = param_f64(params, 2, "elasticity", "BayesianDemand")?;
        let price_change = param_f64(params, 3, "price_change", "BayesianDemand")?;
        if shape <= 0.0 || scale <= 0.0 {
            return Err(Error::Invalid(
                "BayesianDemand: shape and scale must be positive".into(),
            ));
        }
        let gamma = Distribution::Gamma { shape, scale };
        let price_factor = (-elasticity * price_change).exp();
        scalar_block_into(seed, base_pos, num_values, out, |gen| {
            let rate = gamma.sample(gen);
            Distribution::Poisson {
                lambda: rate * price_factor,
            }
            .sample(gen)
        });
        Ok(())
    }
}

/// Terminal value of a geometric Brownian motion via Euler discretization.
///
/// The intro motivates "future values of financial assets ... specified
/// using Euler approximations to stochastic differential equations".  The
/// asset follows `dS = μ S dt + σ S dW`; one invocation simulates `steps`
/// Euler steps over `horizon` years and reports the terminal value.
///
/// Parameters: `[s0, mu, sigma, horizon]`.  Output: one row with a `value`
/// column.  The number of Euler steps is fixed at construction.
#[derive(Debug, Clone)]
pub struct GbmTerminalVg {
    steps: usize,
}

impl GbmTerminalVg {
    /// Create a GBM terminal-value VG function using `steps` Euler steps.
    pub fn new(steps: usize) -> Self {
        assert!(steps >= 1, "need at least one Euler step");
        GbmTerminalVg { steps }
    }

    /// The Euler step count fixed at construction.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl Default for GbmTerminalVg {
    fn default() -> Self {
        GbmTerminalVg::new(32)
    }
}

impl VgFunction for GbmTerminalVg {
    fn name(&self) -> &str {
        "GbmTerminal"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        format!("GbmTerminal[steps={}]", self.steps)
    }

    fn output_fields(&self) -> Vec<Field> {
        vec![Field::float64("value")]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let s0 = param_f64(params, 0, "s0", "GbmTerminal")?;
        let mu = param_f64(params, 1, "mu", "GbmTerminal")?;
        let sigma = param_f64(params, 2, "sigma", "GbmTerminal")?;
        let horizon = param_f64(params, 3, "horizon", "GbmTerminal")?;
        if s0 <= 0.0 || sigma < 0.0 || horizon <= 0.0 {
            return Err(Error::Invalid(
                "GbmTerminal: require s0 > 0, sigma >= 0, horizon > 0".into(),
            ));
        }
        let dt = horizon / self.steps as f64;
        let sqrt_dt = dt.sqrt();
        let mut s = s0;
        for _ in 0..self.steps {
            let z = std_normal_quantile(gen.next_f64_open());
            // Euler–Maruyama step; clamp at a tiny positive value so a large
            // negative shock cannot push the discretized price below zero.
            s += mu * s * dt + sigma * s * sqrt_dt * z;
            s = s.max(1e-12);
        }
        Ok(vec![Tuple::from_iter_values([s])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let s0 = param_f64(params, 0, "s0", "GbmTerminal")?;
        let mu = param_f64(params, 1, "mu", "GbmTerminal")?;
        let sigma = param_f64(params, 2, "sigma", "GbmTerminal")?;
        let horizon = param_f64(params, 3, "horizon", "GbmTerminal")?;
        if s0 <= 0.0 || sigma < 0.0 || horizon <= 0.0 {
            return Err(Error::Invalid(
                "GbmTerminal: require s0 > 0, sigma >= 0, horizon > 0".into(),
            ));
        }
        let dt = horizon / self.steps as f64;
        let sqrt_dt = dt.sqrt();
        let steps = self.steps;
        scalar_block_into(seed, base_pos, num_values, out, |gen| {
            let mut s = s0;
            for _ in 0..steps {
                let z = std_normal_quantile(gen.next_f64_open());
                s += mu * s * dt + sigma * s * sqrt_dt * z;
                s = s.max(1e-12);
            }
            s
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_prng::RandomStream;

    fn run_scalar(vg: &dyn VgFunction, params: &[Value], seed: u64, n: usize) -> Vec<f64> {
        let stream = RandomStream::new(seed);
        (0..n)
            .map(|pos| {
                let mut gen = stream.generator_at(pos as u64);
                vg.generate(params, &mut gen).unwrap()[0]
                    .value(0)
                    .as_f64()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn normal_vg_matches_paper_parameterization() {
        // §2: Normal(VALUES(m, 1.0)) — mean m, variance 1.
        let vg = NormalVg;
        let samples = run_scalar(&vg, &[Value::Float64(4.0), Value::Float64(1.0)], 11, 50_000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 4.0).abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
        assert_eq!(vg.output_fields()[0].name, "value");
    }

    #[test]
    fn normal_vg_rejects_bad_params() {
        let mut gen = Pcg64::new(1);
        assert!(NormalVg.generate(&[Value::Float64(1.0)], &mut gen).is_err());
        assert!(NormalVg
            .generate(&[Value::Float64(1.0), Value::Float64(-2.0)], &mut gen)
            .is_err());
        assert!(NormalVg
            .generate(&[Value::str("x"), Value::Float64(1.0)], &mut gen)
            .is_err());
    }

    #[test]
    fn vg_calls_are_deterministic_per_position() {
        let stream = RandomStream::new(77);
        let params = [Value::Float64(3.0), Value::Float64(1.0)];
        let a = NormalVg
            .generate(&params, &mut stream.generator_at(5))
            .unwrap();
        let b = NormalVg
            .generate(&params, &mut stream.generator_at(5))
            .unwrap();
        assert_eq!(a, b);
        let c = NormalVg
            .generate(&params, &mut stream.generator_at(6))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_and_poisson_vg() {
        let u = run_scalar(
            &UniformVg,
            &[Value::Float64(2.0), Value::Float64(4.0)],
            3,
            20_000,
        );
        assert!(u.iter().all(|&x| (2.0..4.0).contains(&x)));
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        assert!((mean - 3.0).abs() < 0.02);

        let p = run_scalar(&PoissonVg, &[Value::Float64(6.0)], 4, 20_000);
        let mean = p.iter().sum::<f64>() / p.len() as f64;
        assert!((mean - 6.0).abs() < 0.1);
        assert!(p.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));

        let mut gen = Pcg64::new(1);
        assert!(UniformVg
            .generate(&[Value::Float64(4.0), Value::Float64(2.0)], &mut gen)
            .is_err());
        assert!(PoissonVg
            .generate(&[Value::Float64(-1.0)], &mut gen)
            .is_err());
    }

    #[test]
    fn discrete_vg_respects_weights() {
        let vg = DiscreteVg::new(vec![
            Value::str("ship"),
            Value::str("truck"),
            Value::str("air"),
        ]);
        let params = [
            Value::Float64(0.5),
            Value::Float64(0.3),
            Value::Float64(0.2),
        ];
        let stream = RandomStream::new(21);
        let mut counts = std::collections::BTreeMap::new();
        let n = 30_000;
        for pos in 0..n {
            let mut gen = stream.generator_at(pos);
            let rows = vg.generate(&params, &mut gen).unwrap();
            *counts.entry(rows[0].value(0).to_string()).or_insert(0usize) += 1;
        }
        let frac = |k: &str| counts[k] as f64 / n as f64;
        assert!((frac("ship") - 0.5).abs() < 0.02);
        assert!((frac("truck") - 0.3).abs() < 0.02);
        assert!((frac("air") - 0.2).abs() < 0.02);
    }

    #[test]
    fn cache_tokens_discriminate_configurations() {
        assert_eq!(NormalVg.cache_token(), "Normal");
        assert_ne!(
            MultiNormalVg::new(3, 0.5).cache_token(),
            MultiNormalVg::new(4, 0.5).cache_token()
        );
        assert_ne!(
            MultiNormalVg::new(3, 0.5).cache_token(),
            MultiNormalVg::new(3, 0.2).cache_token()
        );
        assert_ne!(
            DiscreteVg::new(vec![Value::Int64(1)]).cache_token(),
            DiscreteVg::new(vec![Value::Int64(2)]).cache_token()
        );
        // Serialization must not collide across types or string boundaries.
        assert_ne!(
            DiscreteVg::new(vec![Value::Int64(1), Value::Int64(2)]).cache_token(),
            DiscreteVg::new(vec![Value::Float64(1.0), Value::Float64(2.0)]).cache_token()
        );
        assert_ne!(
            DiscreteVg::new(vec![Value::str("a,b")]).cache_token(),
            DiscreteVg::new(vec![Value::str("a"), Value::str("b")]).cache_token()
        );
        assert_ne!(
            DiscreteVg::new(vec![Value::Bool(true)]).cache_token(),
            DiscreteVg::new(vec![Value::Int64(1)]).cache_token()
        );
        assert_ne!(
            GbmTerminalVg::new(16).cache_token(),
            GbmTerminalVg::new(32).cache_token()
        );
    }

    /// Assert `generate_block_into` and per-position `generate` agree
    /// bit-for-bit over a window of stream positions.
    fn assert_batched_matches_scalar(vg: &dyn VgFunction, params: &[Value], seed: u64) {
        let (base, n) = (5u64, 64usize);
        let mut block = ColumnBlock::new();
        vg.generate_block_into(params, seed, base, n, &mut block)
            .unwrap();
        block.validate(n).unwrap();
        let stream = RandomStream::new(seed);
        let mut rows_per_pos = None;
        for i in 0..n {
            let mut gen = stream.generator_at(base + i as u64);
            let rows = vg.generate(params, &mut gen).unwrap();
            rows_per_pos = Some(rows.len());
            assert_eq!(block.rows_per_pos(), rows.len());
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(block.cols(), row.arity());
                for c in 0..row.arity() {
                    let batched = block.value_at(r, c, i).unwrap();
                    let scalar = row.value(c);
                    match (&batched, scalar) {
                        (Value::Float64(a), Value::Float64(b)) => {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{} pos {i} cell ({r},{c})",
                                vg.name()
                            );
                        }
                        _ => assert_eq!(&batched, scalar, "{} pos {i} cell ({r},{c})", vg.name()),
                    }
                }
            }
        }
        assert_eq!(rows_per_pos, Some(block.rows_per_pos()));
    }

    #[test]
    fn batched_generation_is_bit_identical_for_every_builtin_vg() {
        let f = Value::Float64;
        assert_batched_matches_scalar(&NormalVg, &[f(3.0), f(2.0)], 11);
        assert_batched_matches_scalar(&UniformVg, &[f(-1.0), f(4.0)], 12);
        assert_batched_matches_scalar(&PoissonVg, &[f(6.5)], 13);
        assert_batched_matches_scalar(
            &DiscreteVg::new(vec![
                Value::str("ship"),
                Value::str("truck"),
                Value::str("air"),
            ]),
            &[f(0.5), f(0.3), f(0.2)],
            14,
        );
        assert_batched_matches_scalar(
            &DiscreteVg::new(vec![Value::Int64(20), Value::Int64(21), Value::Null]),
            &[f(0.4), f(0.4), f(0.2)],
            15,
        );
        assert_batched_matches_scalar(&MultiNormalVg::new(3, 0.6), &[f(1.0), f(2.0)], 16);
        assert_batched_matches_scalar(&BayesianDemandVg, &[f(4.0), f(2.5), f(1.5), f(0.1)], 17);
        assert_batched_matches_scalar(
            &GbmTerminalVg::new(16),
            &[f(100.0), f(0.05), f(0.2), f(1.0)],
            18,
        );
        assert_batched_matches_scalar(&BoxMullerNormalVg, &[f(3.0), f(2.0)], 19);
        assert_batched_matches_scalar(
            &crate::alias::AliasDiscreteVg::new(vec![
                Value::Int64(20),
                Value::Int64(21),
                Value::Null,
            ]),
            &[f(0.4), f(0.4), f(0.2)],
            20,
        );
    }

    /// The opt-in sampler variants are different *configurations*: same
    /// parameters, same seed, different streams — and different tokens, so
    /// a plan-keyed cache can never serve one variant's streams for the
    /// other.
    #[test]
    fn sampler_variants_diverge_from_the_default_samplers() {
        let f = Value::Float64;
        let params = [f(3.0), f(2.0)];
        let mut a = ColumnBlock::new();
        let mut b = ColumnBlock::new();
        NormalVg
            .generate_block_into(&params, 9, 0, 64, &mut a)
            .unwrap();
        BoxMullerNormalVg
            .generate_block_into(&params, 9, 0, 64, &mut b)
            .unwrap();
        assert_ne!(NormalVg.cache_token(), BoxMullerNormalVg.cache_token());
        let diverged =
            (0..64).any(|i| a.value_at(0, 0, i).unwrap() != b.value_at(0, 0, i).unwrap());
        assert!(diverged, "Box–Muller must not alias the inverse-CDF stream");
    }

    /// A third-party-style VG with no batched override: the default
    /// `generate_block_into` must fall back to per-position `generate` and
    /// still satisfy the bit-exact contract.
    #[derive(Debug)]
    struct FallbackOnlyVg;

    impl VgFunction for FallbackOnlyVg {
        fn name(&self) -> &str {
            "FallbackOnly"
        }
        fn cache_token(&self) -> String {
            self.name().to_string()
        }
        fn output_fields(&self) -> Vec<Field> {
            vec![Field::float64("value"), Field::utf8("label")]
        }
        fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
            let shift = param_f64(params, 0, "shift", "FallbackOnly")?;
            let x = gen.next_f64() + shift;
            let label = if x > shift + 0.5 { "hi" } else { "lo" };
            Ok(vec![Tuple::from_iter_values([
                Value::Float64(x),
                Value::str(label),
            ])])
        }
    }

    #[test]
    fn default_batched_fallback_matches_scalar_generation() {
        assert_batched_matches_scalar(&FallbackOnlyVg, &[Value::Float64(2.0)], 19);
    }

    /// A broken VG whose output row count depends on the draw — the contract
    /// violation the per-block shape validation must catch.
    #[derive(Debug)]
    struct RaggedVg;

    impl VgFunction for RaggedVg {
        fn name(&self) -> &str {
            "Ragged"
        }
        fn cache_token(&self) -> String {
            self.name().to_string()
        }
        fn output_fields(&self) -> Vec<Field> {
            vec![Field::float64("value")]
        }
        fn generate(&self, _params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
            let rows = if gen.next_f64() < 0.5 { 1 } else { 2 };
            Ok((0..rows)
                .map(|_| Tuple::from_iter_values([gen.next_f64()]))
                .collect())
        }
    }

    #[test]
    fn ragged_row_counts_error_in_the_batched_fallback() {
        let mut block = ColumnBlock::new();
        let err = RaggedVg
            .generate_block_into(&[], 3, 0, 256, &mut block)
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("fixed, seed-independent row count"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn discrete_batched_blocks_intern_categories() {
        let vg = DiscreteVg::new(vec![
            Value::str("ship"),
            Value::str("truck"),
            Value::str("air"),
        ]);
        let params = [
            Value::Float64(0.5),
            Value::Float64(0.3),
            Value::Float64(0.2),
        ];
        let mut block = ColumnBlock::new();
        vg.generate_block_into(&params, 21, 0, 10_000, &mut block)
            .unwrap();
        match block.column(0, 0).data() {
            mcdbr_storage::ColumnData::Utf8(col) => {
                assert_eq!(col.len(), 10_000);
                assert_eq!(
                    col.distinct(),
                    3,
                    "10k sampled rows must store exactly 3 arena strings"
                );
            }
            other => panic!("expected an interned Utf8 column, got {other:?}"),
        }
    }

    #[test]
    fn discrete_cache_tokens_are_stable_across_the_interning_change() {
        // The plan fingerprint (and therefore every session-cache key) must
        // not move when category storage changes representation: these are
        // the exact token strings the pre-interning implementation produced.
        assert_eq!(
            DiscreteVg::new(vec![Value::str("a,b"), Value::Int64(1)]).cache_token(),
            "Discrete|s3:a,b|i1"
        );
        assert_eq!(
            DiscreteVg::new(vec![
                Value::Float64(1.0),
                Value::Bool(true),
                Value::Null,
                Value::str("x")
            ])
            .cache_token(),
            format!("Discrete|f{:016x}|b1|n|s1:x", 1.0f64.to_bits())
        );
    }

    #[test]
    fn discrete_vg_validates_weights() {
        let vg = DiscreteVg::new(vec![Value::Int64(1), Value::Int64(2)]);
        let mut gen = Pcg64::new(1);
        assert!(vg.generate(&[Value::Float64(1.0)], &mut gen).is_err());
        assert!(vg
            .generate(&[Value::Float64(-1.0), Value::Float64(2.0)], &mut gen)
            .is_err());
        assert!(vg
            .generate(&[Value::Float64(0.0), Value::Float64(0.0)], &mut gen)
            .is_err());
    }

    #[test]
    fn multi_normal_produces_correlated_block() {
        let vg = MultiNormalVg::new(2, 0.8);
        let stream = RandomStream::new(5);
        let params = [Value::Float64(0.0), Value::Float64(1.0)];
        let n = 40_000;
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for pos in 0..n {
            let mut gen = stream.generator_at(pos);
            let rows = vg.generate(&params, &mut gen).unwrap();
            assert_eq!(rows.len(), 2);
            let x = rows[0].value(1).as_f64().unwrap();
            let y = rows[1].value(1).as_f64().unwrap();
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let nf = n as f64;
        let (mx, my) = (sx / nf, sy / nf);
        let cov = sxy / nf - mx * my;
        let vx = sxx / nf - mx * mx;
        let vy = syy / nf - my * my;
        let corr = cov / (vx * vy).sqrt();
        assert!((corr - 0.8).abs() < 0.03, "corr = {corr}");
    }

    #[test]
    fn bayesian_demand_mean_matches_theory() {
        // E[demand] = E[rate] * exp(-e * dp) = shape*scale * exp(-1.5*0.1)
        let vg = BayesianDemandVg;
        let params = [
            Value::Float64(4.0),
            Value::Float64(2.5),
            Value::Float64(1.5),
            Value::Float64(0.1),
        ];
        let d = run_scalar(&vg, &params, 9, 40_000);
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        let expected = 4.0 * 2.5 * (-1.5f64 * 0.1).exp();
        assert!(
            (mean - expected).abs() < 0.15,
            "mean = {mean}, expected = {expected}"
        );
        let mut gen = Pcg64::new(1);
        assert!(vg
            .generate(
                &[
                    Value::Float64(-1.0),
                    Value::Float64(1.0),
                    Value::Float64(0.0),
                    Value::Float64(0.0)
                ],
                &mut gen
            )
            .is_err());
    }

    #[test]
    fn gbm_terminal_mean_matches_theory() {
        // E[S_T] = S0 * exp(mu * T) for GBM (Euler bias is small for many steps).
        let vg = GbmTerminalVg::new(64);
        let params = [
            Value::Float64(100.0),
            Value::Float64(0.05),
            Value::Float64(0.2),
            Value::Float64(1.0),
        ];
        let s = run_scalar(&vg, &params, 13, 40_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let expected = 100.0 * (0.05f64).exp();
        assert!(
            (mean - expected).abs() < 1.0,
            "mean = {mean}, expected = {expected}"
        );
        assert!(s.iter().all(|&x| x > 0.0));
        let mut gen = Pcg64::new(1);
        assert!(vg
            .generate(
                &[
                    Value::Float64(-5.0),
                    Value::Float64(0.0),
                    Value::Float64(0.1),
                    Value::Float64(1.0)
                ],
                &mut gen
            )
            .is_err());
    }
}
