//! A recursive-descent parser for the §2 risk-query dialect.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query      := SELECT agg '(' ident ')' AS ident
//!               FROM ident
//!               [ WHERE condition ( AND condition )* ]
//!               WITH RESULTDISTRIBUTION MONTECARLO '(' integer ')'
//!               [ DOMAIN ident '>=' QUANTILE '(' number ')' ]
//!               [ FREQUENCYTABLE ident ]
//! agg        := SUM | COUNT | AVG | MIN | MAX
//! condition  := ident op literal
//! op         := '<' | '<=' | '>' | '>=' | '=' | '<>'
//! literal    := number | quoted string
//! ```
//!
//! The `WHERE` clause only admits deterministic comparisons against literals
//! — predicates over random attributes belong to the engine's final
//! predicate (paper Appendix A), which is constructed programmatically.

use mcdbr_exec::{AggFunc, BinaryOp, Expr};
use mcdbr_storage::{Error, Result, Value};

use crate::spec::{DomainClause, RiskQuerySpec};

/// Parse a risk query in the §2 dialect.
pub fn parse_risk_query(input: &str) -> Result<RiskQuerySpec> {
    let tokens = tokenize(input)?;
    Parser { tokens, pos: 0 }.parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() || c == ',' {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            tokens.push(Token::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || chars[i] == '.'
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-') && matches!(chars[i - 1], 'e' | 'E')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text
                .parse::<f64>()
                .map_err(|_| Error::Invalid(format!("bad numeric literal: {text}")))?;
            tokens.push(Token::Number(value));
        } else if c == '\'' || c == '"' {
            let quote = c;
            i += 1;
            let start = i;
            while i < chars.len() && chars[i] != quote {
                i += 1;
            }
            if i >= chars.len() {
                return Err(Error::Invalid("unterminated string literal".into()));
            }
            tokens.push(Token::Str(chars[start..i].iter().collect()));
            i += 1;
        } else if "()<>=".contains(c) {
            // Greedily take two-character operators.
            if i + 1 < chars.len() {
                let two: String = chars[i..i + 2].iter().collect();
                if two == "<=" || two == ">=" || two == "<>" {
                    tokens.push(Token::Symbol(two));
                    i += 2;
                    continue;
                }
            }
            tokens.push(Token::Symbol(c.to_string()));
            i += 1;
        } else {
            return Err(Error::Invalid(format!(
                "unexpected character '{c}' in query"
            )));
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Invalid("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(Error::Invalid(format!(
                "expected keyword {kw}, found {other:?}"
            ))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        match self.next()? {
            Token::Symbol(s) if s == sym => Ok(()),
            other => Err(Error::Invalid(format!("expected '{sym}', found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Invalid(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next()? {
            Token::Number(v) => Ok(v),
            other => Err(Error::Invalid(format!("expected number, found {other:?}"))),
        }
    }

    fn parse_query(&mut self) -> Result<RiskQuerySpec> {
        self.expect_keyword("SELECT")?;
        let agg_name = self.ident()?;
        let agg_func = match agg_name.to_ascii_uppercase().as_str() {
            "SUM" => AggFunc::Sum,
            "COUNT" => AggFunc::Count,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            other => {
                return Err(Error::Invalid(format!(
                    "unknown aggregate function {other}"
                )))
            }
        };
        self.expect_symbol("(")?;
        let agg_column = self.ident()?;
        self.expect_symbol(")")?;
        self.expect_keyword("AS")?;
        let alias = self.ident()?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;

        let mut predicate = None;
        if self.keyword_is("WHERE") {
            self.expect_keyword("WHERE")?;
            predicate = Some(self.parse_conjunction()?);
        }

        self.expect_keyword("WITH")?;
        self.expect_keyword("RESULTDISTRIBUTION")?;
        self.expect_keyword("MONTECARLO")?;
        self.expect_symbol("(")?;
        let samples = self.number()?;
        self.expect_symbol(")")?;
        if samples < 1.0 || samples.fract() != 0.0 {
            return Err(Error::Invalid(format!(
                "MONTECARLO expects a positive integer, got {samples}"
            )));
        }

        let mut domain = None;
        if self.keyword_is("DOMAIN") {
            self.expect_keyword("DOMAIN")?;
            let domain_alias = self.ident()?;
            self.expect_symbol(">=")?;
            self.expect_keyword("QUANTILE")?;
            self.expect_symbol("(")?;
            let quantile = self.number()?;
            self.expect_symbol(")")?;
            if !(0.0 < quantile && quantile < 1.0) {
                return Err(Error::Invalid(format!(
                    "QUANTILE level {quantile} outside (0,1)"
                )));
            }
            if !domain_alias.eq_ignore_ascii_case(&alias) {
                return Err(Error::Invalid(format!(
                    "DOMAIN refers to {domain_alias} but the aggregate alias is {alias}"
                )));
            }
            domain = Some(DomainClause {
                alias: domain_alias,
                quantile,
            });
        }

        let mut frequency_table = false;
        if self.keyword_is("FREQUENCYTABLE") {
            self.expect_keyword("FREQUENCYTABLE")?;
            let ft_alias = self.ident()?;
            if !ft_alias.eq_ignore_ascii_case(&alias) {
                return Err(Error::Invalid(format!(
                    "FREQUENCYTABLE refers to {ft_alias} but the aggregate alias is {alias}"
                )));
            }
            frequency_table = true;
        }

        if self.pos != self.tokens.len() {
            return Err(Error::Invalid(format!(
                "trailing tokens after the query: {:?}",
                &self.tokens[self.pos..]
            )));
        }

        Ok(RiskQuerySpec {
            agg_func,
            agg_column,
            alias,
            table,
            predicate,
            monte_carlo_samples: samples as usize,
            domain,
            frequency_table,
        })
    }

    fn parse_conjunction(&mut self) -> Result<Expr> {
        let mut expr = self.parse_condition()?;
        while self.keyword_is("AND") {
            self.expect_keyword("AND")?;
            expr = expr.and(self.parse_condition()?);
        }
        Ok(expr)
    }

    fn parse_condition(&mut self) -> Result<Expr> {
        let column = self.ident()?;
        let op = match self.next()? {
            Token::Symbol(s) => match s.as_str() {
                "<" => BinaryOp::Lt,
                "<=" => BinaryOp::LtEq,
                ">" => BinaryOp::Gt,
                ">=" => BinaryOp::GtEq,
                "=" => BinaryOp::Eq,
                "<>" => BinaryOp::NotEq,
                other => {
                    return Err(Error::Invalid(format!(
                        "unknown comparison operator {other}"
                    )))
                }
            },
            other => {
                return Err(Error::Invalid(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let literal = match self.next()? {
            Token::Number(v) => {
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    Value::Int64(v as i64)
                } else {
                    Value::Float64(v)
                }
            }
            Token::Str(s) => Value::str(s),
            other => return Err(Error::Invalid(format!("expected literal, found {other:?}"))),
        };
        Ok(Expr::Binary {
            op,
            lhs: Box::new(Expr::col(column)),
            rhs: Box::new(Expr::Literal(literal)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_QUERY: &str = "SELECT SUM(val) as totalLoss \
                               FROM Losses \
                               WHERE CID < 10010 \
                               WITH RESULTDISTRIBUTION MONTECARLO(100) \
                               DOMAIN totalLoss >= QUANTILE(0.99) \
                               FREQUENCYTABLE totalLoss";

    #[test]
    fn parses_the_section_2_query() {
        let spec = parse_risk_query(PAPER_QUERY).unwrap();
        assert_eq!(spec.agg_func, AggFunc::Sum);
        assert_eq!(spec.agg_column, "val");
        assert_eq!(spec.alias, "totalLoss");
        assert_eq!(spec.table, "Losses");
        assert_eq!(spec.monte_carlo_samples, 100);
        assert!(spec.frequency_table);
        let domain = spec.domain.unwrap();
        assert_eq!(domain.quantile, 0.99);
        assert!((domain.tail_probability() - 0.01).abs() < 1e-12);
        let pred = spec.predicate.unwrap();
        assert_eq!(pred.to_string(), "(CID < 10010)");
    }

    #[test]
    fn parses_without_optional_clauses() {
        let spec = parse_risk_query(
            "SELECT AVG(delay) AS meanDelay FROM Shipments WITH RESULTDISTRIBUTION MONTECARLO(500)",
        )
        .unwrap();
        assert_eq!(spec.agg_func, AggFunc::Avg);
        assert!(spec.predicate.is_none());
        assert!(spec.domain.is_none());
        assert!(!spec.frequency_table);
        assert_eq!(spec.monte_carlo_samples, 500);
    }

    #[test]
    fn parses_conjunctive_where_and_string_literals() {
        let spec = parse_risk_query(
            "SELECT SUM(val) AS total FROM random_ord \
             WHERE o_yr = '1994' AND o_tot >= 2.5 \
             WITH RESULTDISTRIBUTION MONTECARLO(10)",
        )
        .unwrap();
        let pred = spec.predicate.unwrap();
        assert_eq!(pred.to_string(), "((o_yr = 1994) AND (o_tot >= 2.5))");
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_risk_query("SELECT val FROM t").is_err());
        assert!(parse_risk_query(
            "SELECT FROB(val) AS x FROM t WITH RESULTDISTRIBUTION MONTECARLO(10)"
        )
        .is_err());
        assert!(parse_risk_query(
            "SELECT SUM(val) AS x FROM t WITH RESULTDISTRIBUTION MONTECARLO(0)"
        )
        .is_err());
        assert!(parse_risk_query(
            "SELECT SUM(val) AS x FROM t WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN y >= QUANTILE(0.9)"
        )
        .is_err());
        assert!(parse_risk_query(
            "SELECT SUM(val) AS x FROM t WITH RESULTDISTRIBUTION MONTECARLO(10) DOMAIN x >= QUANTILE(1.5)"
        )
        .is_err());
        assert!(parse_risk_query(
            "SELECT SUM(val) AS x FROM t WITH RESULTDISTRIBUTION MONTECARLO(10) extra"
        )
        .is_err());
        assert!(parse_risk_query("SELECT SUM(val) AS x FROM t WHERE name = 'unterminated WITH RESULTDISTRIBUTION MONTECARLO(10)").is_err());
    }

    #[test]
    fn tail_probability_of_the_appendix_d_query() {
        let spec = parse_risk_query(
            "SELECT SUM(val) AS totalLoss FROM random_ord \
             WITH RESULTDISTRIBUTION MONTECARLO(100) \
             DOMAIN totalLoss >= QUANTILE(0.999)",
        )
        .unwrap();
        assert!((spec.domain.unwrap().tail_probability() - 0.001).abs() < 1e-12);
    }
}
