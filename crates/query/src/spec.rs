//! The parsed form of a risk query.

use mcdbr_exec::plan::RandomTableSpec;
use mcdbr_exec::{AggFunc, AggregateSpec, Expr, PlanNode};
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_storage::{Error, Result};

/// The `DOMAIN <alias> >= QUANTILE(q)` clause: condition the query-result
/// distribution on its upper tail beyond the `q`-quantile (paper §2).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainClause {
    /// The aggregate alias the clause refers to (e.g. `totalLoss`).
    pub alias: String,
    /// The quantile level `q` (e.g. 0.99); the tail probability is `1 - q`.
    pub quantile: f64,
}

impl DomainClause {
    /// The upper-tail probability `p = 1 - q`.
    pub fn tail_probability(&self) -> f64 {
        1.0 - self.quantile
    }
}

/// A parsed risk query.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskQuerySpec {
    /// Aggregate function (SUM, COUNT, AVG, MIN, MAX).
    pub agg_func: AggFunc,
    /// The aggregand column.
    pub agg_column: String,
    /// The aggregate's output alias.
    pub alias: String,
    /// The uncertain table named in the `FROM` clause.
    pub table: String,
    /// Optional deterministic `WHERE` predicate.
    pub predicate: Option<Expr>,
    /// Number of Monte Carlo samples requested by `MONTECARLO(n)`.
    pub monte_carlo_samples: usize,
    /// Optional `DOMAIN` clause (presence turns the query into a
    /// tail-sampling run).
    pub domain: Option<DomainClause>,
    /// Whether a `FREQUENCYTABLE` of the aggregate was requested.
    pub frequency_table: bool,
}

impl RiskQuerySpec {
    /// Bind the uncertain table name to its `CREATE TABLE ... FOR EACH`
    /// specification, producing the executable [`MonteCarloQuery`].
    pub fn into_query(self, uncertain_table: RandomTableSpec) -> Result<MonteCarloQuery> {
        if !uncertain_table.name.eq_ignore_ascii_case(&self.table) {
            return Err(Error::Invalid(format!(
                "query reads table {} but the supplied uncertain-table definition is for {}",
                self.table, uncertain_table.name
            )));
        }
        let mut plan = PlanNode::random_table(uncertain_table);
        if let Some(pred) = &self.predicate {
            plan = plan.filter(pred.clone());
        }
        let aggregate = AggregateSpec {
            func: self.agg_func,
            expr: Expr::col(self.agg_column.clone()),
            alias: self.alias.clone(),
        };
        Ok(MonteCarloQuery::new(plan, aggregate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_exec::plan::scalar_random_table;
    use mcdbr_vg::NormalVg;
    use std::sync::Arc;

    fn losses_spec() -> RandomTableSpec {
        scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        )
    }

    fn base_spec() -> RiskQuerySpec {
        RiskQuerySpec {
            agg_func: AggFunc::Sum,
            agg_column: "val".into(),
            alias: "totalLoss".into(),
            table: "Losses".into(),
            predicate: Some(Expr::col("cid").lt(Expr::lit(10i64))),
            monte_carlo_samples: 100,
            domain: Some(DomainClause {
                alias: "totalLoss".into(),
                quantile: 0.99,
            }),
            frequency_table: true,
        }
    }

    #[test]
    fn domain_clause_tail_probability() {
        let d = DomainClause {
            alias: "totalLoss".into(),
            quantile: 0.999,
        };
        assert!((d.tail_probability() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn binding_builds_a_runnable_query() {
        let query = base_spec().into_query(losses_spec()).unwrap();
        assert_eq!(query.aggregate.alias, "totalLoss");
        assert!(query.plan.to_string().contains("Filter"));
        assert!(query.plan.to_string().contains("RandomTable(Losses"));
    }

    #[test]
    fn binding_the_wrong_table_is_rejected() {
        let mut spec = base_spec();
        spec.table = "Premiums".into();
        assert!(spec.into_query(losses_spec()).is_err());
    }
}
