//! A front-end for the MCDB-R query surface of paper §2.
//!
//! The paper's prototype "does not yet have an optimizer or SQL compiler;
//! instead, we use an MCDB-specific language to specify a query plan
//! directly" (Appendix D).  This crate goes one step further than the
//! prototype and provides a small parser for the risk-query dialect the paper
//! *presents* to users:
//!
//! ```sql
//! SELECT SUM(val) AS totalLoss
//! FROM Losses
//! WHERE CID < 10010
//! WITH RESULTDISTRIBUTION MONTECARLO(100)
//! DOMAIN totalLoss >= QUANTILE(0.99)
//! FREQUENCYTABLE totalLoss
//! ```
//!
//! The parser produces a [`RiskQuerySpec`]: which aggregate over which
//! uncertain table, the deterministic `WHERE` predicate, the number of Monte
//! Carlo samples, and the `DOMAIN ... QUANTILE(q)` clause that MCDB-R turns
//! into a tail-sampling run.  Binding the uncertain table name to an actual
//! `RandomTableSpec` (the `CREATE TABLE ... FOR EACH` statement) remains the
//! caller's job, mirroring how plans are assembled programmatically in the
//! rest of this repository; `RiskQuerySpec::into_query` performs that binding.

pub mod parser;
pub mod spec;

pub use parser::parse_risk_query;
pub use spec::{DomainClause, RiskQuerySpec};
