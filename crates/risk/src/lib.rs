//! Risk measures and validation oracles.
//!
//! MCDB-R's purpose is risk assessment: "computing interesting properties of
//! the upper or lower tails of the query-result distribution" (paper §1) —
//! value at risk (an extreme quantile), expected shortfall (the expected loss
//! given that the loss exceeds the VaR), and more generally the conditional
//! distribution of the loss beyond the VaR.  This crate provides those
//! measures over tail samples, plus the analytic oracle the paper uses to
//! validate accuracy in Appendix D (the query-result distribution of a SUM of
//! independent normals through a join is itself normal, so the true tail CDF
//! and true extreme quantile are available in closed form — the thick black
//! lines of Figure 5).

pub mod analytic;
pub mod measures;

pub use analytic::{NormalSumOracle, TailCdfComparison};
pub use measures::{expected_shortfall, value_at_risk, EmpiricalCdf, TailSummary};
