//! Risk measures over Monte Carlo samples.

use mcdbr_storage::{Error, Result};

/// Value at risk: the `(1-p)`-quantile of the loss samples (the probabilistic
/// worst-case scenario of paper §1).  Uses the same ceil-rank order-statistic
/// convention as the rest of the system.
pub fn value_at_risk(samples: &[f64], p: f64) -> Result<f64> {
    if samples.is_empty() {
        return Err(Error::InvalidOperation("VaR of an empty sample set".into()));
    }
    if !(0.0 < p && p < 1.0) {
        return Err(Error::InvalidOperation(format!(
            "tail probability {p} outside (0,1)"
        )));
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let rank = (((1.0 - p) * n as f64).ceil() as usize).clamp(1, n);
    Ok(sorted[rank - 1])
}

/// Expected shortfall: the mean loss, given that the loss is at least
/// `threshold` (paper §1-§2: "the expected total loss, given that this loss
/// exceeds θ", computed in §2 as `SUM(totalLoss * FRAC)` over the tail
/// frequency table).
pub fn expected_shortfall(samples: &[f64], threshold: f64) -> Result<f64> {
    let tail: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|&x| x >= threshold)
        .collect();
    if tail.is_empty() {
        return Err(Error::InvalidOperation(format!(
            "no samples at or above the threshold {threshold}"
        )));
    }
    Ok(tail.iter().sum::<f64>() / tail.len() as f64)
}

/// An empirical CDF over a fixed sample set.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Build from samples (NaNs are rejected).
    pub fn new(samples: &[f64]) -> Result<Self> {
        if samples.iter().any(|x| x.is_nan()) {
            return Err(Error::InvalidOperation(
                "empirical CDF over NaN samples".into(),
            ));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(EmpiricalCdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)`: fraction of samples ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The sorted samples with their plotting positions `(x_(i), i/n)` —
    /// the series plotted in Figure 5.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Kolmogorov–Smirnov distance to a reference CDF.
    pub fn ks_distance(&self, reference: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = reference(x);
            let hi = (i + 1) as f64 / n;
            let lo = i as f64 / n;
            d = d.max((f - lo).abs()).max((hi - f).abs());
        }
        d
    }
}

/// Summary of a set of tail samples: the statistics MCDB-R reports for a
/// `DOMAIN totalLoss >= QUANTILE(1-p)` query.
#[derive(Debug, Clone)]
pub struct TailSummary {
    /// The estimated VaR (lower boundary of the tail).
    pub value_at_risk: f64,
    /// The expected shortfall over the tail samples.
    pub expected_shortfall: f64,
    /// Number of tail samples.
    pub samples: usize,
    /// Smallest and largest tail sample.
    pub range: (f64, f64),
}

impl TailSummary {
    /// Summarize a set of samples that are already conditioned on the tail
    /// (the output of MCDB-R's tail sampler): the VaR estimate is the
    /// smallest sample, matching the paper's `SELECT MIN(totalLoss) FROM
    /// FTABLE` recipe.
    pub fn from_tail_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(Error::InvalidOperation("empty tail sample set".into()));
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(TailSummary {
            value_at_risk: min,
            expected_shortfall: samples.iter().sum::<f64>() / samples.len() as f64,
            samples: samples.len(),
            range: (min, max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_is_the_order_statistic() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(value_at_risk(&samples, 0.05).unwrap(), 95.0);
        assert_eq!(value_at_risk(&samples, 0.5).unwrap(), 50.0);
        assert!(value_at_risk(&[], 0.1).is_err());
        assert!(value_at_risk(&samples, 0.0).is_err());
        assert!(value_at_risk(&samples, 1.0).is_err());
    }

    #[test]
    fn expected_shortfall_is_the_tail_mean() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let var = value_at_risk(&samples, 0.05).unwrap();
        let es = expected_shortfall(&samples, var).unwrap();
        // Mean of 95..=100 is 97.5.
        assert_eq!(es, 97.5);
        assert!(es >= var);
        assert!(expected_shortfall(&samples, 1e9).is_err());
    }

    #[test]
    fn empirical_cdf_evaluation_and_points() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
        let pts = cdf.points();
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[3], (4.0, 1.0));
        assert!(EmpiricalCdf::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn ks_distance_against_the_generating_distribution_is_small() {
        let mut gen = mcdbr_prng::Pcg64::new(3);
        let d = mcdbr_vg::Distribution::Normal { mean: 0.0, sd: 1.0 };
        let samples: Vec<f64> = (0..5000).map(|_| d.sample(&mut gen)).collect();
        let cdf = EmpiricalCdf::new(&samples).unwrap();
        let ks = cdf.ks_distance(mcdbr_vg::math::std_normal_cdf);
        // The 1% critical value for n = 5000 is about 1.63/sqrt(n) ≈ 0.023.
        assert!(ks < 0.023, "KS distance {ks} too large");
        // Against a shifted reference the distance must be much larger.
        let ks_wrong = cdf.ks_distance(|x| mcdbr_vg::math::std_normal_cdf(x - 1.0));
        assert!(ks_wrong > 0.3);
    }

    #[test]
    fn tail_summary_matches_the_paper_recipes() {
        // §2: VaR = MIN(totalLoss) over the tail samples; expected shortfall
        // = the FRAC-weighted mean.
        let tail = vec![15.2e6, 15.9e6, 15.4e6, 16.4e6];
        let summary = TailSummary::from_tail_samples(&tail).unwrap();
        assert_eq!(summary.value_at_risk, 15.2e6);
        assert_eq!(summary.samples, 4);
        assert_eq!(summary.range, (15.2e6, 16.4e6));
        assert!((summary.expected_shortfall - 15.725e6).abs() < 1.0);
        assert!(TailSummary::from_tail_samples(&[]).is_err());
    }
}
