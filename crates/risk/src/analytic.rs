//! Analytic oracles for validating tail samples (paper Appendix D).
//!
//! The Appendix D benchmark exploits a closed form: if each order contributes
//! a `Normal(μ_i, σ_i²)` loss and order `i` joins `g_i` lineitem rows, the
//! query `SELECT SUM(val) FROM random_ord ⋈ lineitem` has result distribution
//! `Normal(Σ g_i μ_i, Σ g_i² σ_i²)` — the quantities computed by the paper's
//! "mean / var" SQL query.  [`NormalSumOracle`] carries that distribution and
//! provides the true extreme quantile and the true conditional tail CDF (the
//! thick black lines of Figure 5), and [`TailCdfComparison`] packages the
//! comparison between an empirical tail CDF and the oracle.

use mcdbr_storage::{Error, Result};
use mcdbr_vg::math::{normal_cdf, normal_quantile};

use crate::measures::EmpiricalCdf;

/// The analytic query-result distribution of a SUM of independent normals.
#[derive(Debug, Clone, Copy)]
pub struct NormalSumOracle {
    /// Mean of the query result.
    pub mean: f64,
    /// Variance of the query result.
    pub variance: f64,
}

impl NormalSumOracle {
    /// Oracle from an explicit mean and variance.
    pub fn new(mean: f64, variance: f64) -> Self {
        assert!(variance > 0.0, "variance must be positive");
        NormalSumOracle { mean, variance }
    }

    /// Oracle from per-group `(fanout, mean, variance)` triples — the direct
    /// analogue of the paper's validation query
    /// `SELECT SUM(grpsize * o_mean), SUM(grpsize * grpsize * o_var) ...`.
    pub fn from_join_groups(groups: &[(u64, f64, f64)]) -> Result<Self> {
        let mut mean = 0.0;
        let mut variance = 0.0;
        for &(fanout, m, v) in groups {
            if v < 0.0 {
                return Err(Error::Invalid(format!("negative per-order variance {v}")));
            }
            let g = fanout as f64;
            mean += g * m;
            variance += g * g * v;
        }
        if variance <= 0.0 {
            return Err(Error::Invalid(
                "query-result variance must be positive".into(),
            ));
        }
        Ok(NormalSumOracle { mean, variance })
    }

    /// Standard deviation of the query result.
    pub fn sd(&self) -> f64 {
        self.variance.sqrt()
    }

    /// CDF of the query-result distribution.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf(x, self.mean, self.sd())
    }

    /// The `q`-quantile of the query-result distribution.
    pub fn quantile(&self, q: f64) -> f64 {
        normal_quantile(q, self.mean, self.sd())
    }

    /// The conditional CDF of the result given that it exceeds the
    /// `(1-p)`-quantile — the "true tail CDF" curve of Figure 5.
    pub fn tail_cdf(&self, p: f64, x: f64) -> f64 {
        let theta = self.quantile(1.0 - p);
        if x < theta {
            return 0.0;
        }
        ((self.cdf(x) - (1.0 - p)) / p).clamp(0.0, 1.0)
    }

    /// Width of the central `1-alpha` probability interval (the paper reports
    /// the "middle 99%" width ≈ 2503 to put the quantile standard error in
    /// perspective).
    pub fn central_interval_width(&self, alpha: f64) -> f64 {
        self.quantile(1.0 - alpha / 2.0) - self.quantile(alpha / 2.0)
    }
}

/// Comparison between an empirical tail CDF (from MCDB-R samples) and the
/// analytic oracle.
#[derive(Debug, Clone)]
pub struct TailCdfComparison {
    /// Tail probability `p` defining the tail.
    pub p: f64,
    /// The analytic `(1-p)`-quantile.
    pub true_quantile: f64,
    /// The estimated quantile (minimum tail sample).
    pub estimated_quantile: f64,
    /// Kolmogorov–Smirnov distance between the empirical tail CDF and the
    /// analytic conditional tail CDF.
    pub ks_distance: f64,
    /// The empirical CDF itself (for plotting / CSV output).
    pub empirical: EmpiricalCdf,
}

impl TailCdfComparison {
    /// Compare tail samples against the oracle.
    pub fn new(oracle: &NormalSumOracle, p: f64, tail_samples: &[f64]) -> Result<Self> {
        if tail_samples.is_empty() {
            return Err(Error::InvalidOperation("no tail samples to compare".into()));
        }
        let empirical = EmpiricalCdf::new(tail_samples)?;
        let ks = empirical.ks_distance(|x| oracle.tail_cdf(p, x));
        let estimated_quantile = tail_samples.iter().copied().fold(f64::INFINITY, f64::min);
        Ok(TailCdfComparison {
            p,
            true_quantile: oracle.quantile(1.0 - p),
            estimated_quantile,
            ks_distance: ks,
            empirical,
        })
    }

    /// Relative error of the quantile estimate.
    pub fn quantile_relative_error(&self) -> f64 {
        (self.estimated_quantile - self.true_quantile).abs() / self.true_quantile.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_prng::Pcg64;
    use mcdbr_vg::math::std_normal_quantile;
    use mcdbr_vg::Distribution;

    #[test]
    fn oracle_from_join_groups_matches_hand_computation() {
        // Two orders: fanout 3 with N(1, 0.25), fanout 2 with N(2, 1).
        let oracle = NormalSumOracle::from_join_groups(&[(3, 1.0, 0.25), (2, 2.0, 1.0)]).unwrap();
        assert_eq!(oracle.mean, 3.0 + 4.0);
        assert_eq!(oracle.variance, 9.0 * 0.25 + 4.0 * 1.0);
        assert!(NormalSumOracle::from_join_groups(&[(1, 0.0, -1.0)]).is_err());
        assert!(NormalSumOracle::from_join_groups(&[(1, 5.0, 0.0)]).is_err());
    }

    #[test]
    fn quantile_and_cdf_are_consistent() {
        let oracle = NormalSumOracle::new(10.0e6, 1.0e12);
        let q = oracle.quantile(0.999);
        assert!((oracle.cdf(q) - 0.999).abs() < 1e-6);
        assert!((q - (10.0e6 + 1.0e6 * std_normal_quantile(0.999))).abs() < 1.0);
        // Central 99% width for a normal is 2 * 2.576 * sd.
        let width = oracle.central_interval_width(0.01);
        assert!((width - 2.0 * 2.5758 * 1.0e6).abs() < 2_000.0);
    }

    #[test]
    fn tail_cdf_is_a_proper_cdf_above_the_quantile() {
        let oracle = NormalSumOracle::new(0.0, 1.0);
        let p = 0.01;
        let theta = oracle.quantile(0.99);
        assert_eq!(oracle.tail_cdf(p, theta - 1.0), 0.0);
        assert!(oracle.tail_cdf(p, theta) < 1e-9);
        let mid = oracle.tail_cdf(p, theta + 0.2);
        assert!(mid > 0.0 && mid < 1.0);
        assert!((oracle.tail_cdf(p, 10.0) - 1.0).abs() < 1e-9);
        // Monotone.
        assert!(oracle.tail_cdf(p, theta + 0.3) > mid);
    }

    #[test]
    fn comparison_against_exact_conditional_samples_is_tight() {
        // Draw samples directly from the conditional tail by inverse CDF and
        // check the comparison reports a small KS distance and quantile error.
        let oracle = NormalSumOracle::new(5.0, 4.0);
        let p = 0.001;
        let mut gen = Pcg64::new(8);
        let samples: Vec<f64> = (0..400)
            .map(|_| {
                let u = gen.next_f64_open();
                oracle.quantile(1.0 - p + p * u)
            })
            .collect();
        let cmp = TailCdfComparison::new(&oracle, p, &samples).unwrap();
        assert!(cmp.ks_distance < 0.1, "KS = {}", cmp.ks_distance);
        assert!(cmp.quantile_relative_error() < 0.01);
        assert!(cmp.estimated_quantile >= cmp.true_quantile * 0.99);
        assert!(TailCdfComparison::new(&oracle, p, &[]).is_err());
    }

    #[test]
    fn comparison_flags_wrong_tails() {
        // Samples from the unconditional distribution (not the tail) must
        // show a large KS distance.
        let oracle = NormalSumOracle::new(0.0, 1.0);
        let d = Distribution::Normal { mean: 0.0, sd: 1.0 };
        let mut gen = Pcg64::new(9);
        let samples: Vec<f64> = (0..500).map(|_| d.sample(&mut gen)).collect();
        let cmp = TailCdfComparison::new(&oracle, 0.01, &samples).unwrap();
        assert!(cmp.ks_distance > 0.5, "KS = {}", cmp.ks_distance);
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn zero_variance_oracle_panics() {
        NormalSumOracle::new(1.0, 0.0);
    }
}
