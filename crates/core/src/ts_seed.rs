//! TS-seeds: the bookkeeping attached to every random stream (paper §6).
//!
//! A TS-seed contains "(1) a TS-seed identifier, (2) the actual PRNG seed
//! used to produce a stream of random data, (3) the range of stream values
//! currently materialized and present within the Gibbs tuples, (4) the last
//! random value in that range that has previously been assigned to any DB
//! version for this TS-seed, and (5) the random value currently assigned to
//! each DB version for this TS-seed."
//!
//! Items (3)–(5) are stream *positions* here (the figures call them
//! "iteration numbers"): item (5) is the per-version assignment that defines
//! what the DB versions currently look like, item (4) feeds the rejection
//! sampler with "the next unassigned random value", and item (3) tells the
//! looper when it has run out of materialized data and must trigger a
//! replenishment run (paper §9).

use mcdbr_prng::SeedId;

/// The tail-sampling seed of paper §6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsSeed {
    /// (1) + (2): the stream identifier / PRNG seed.
    pub seed: SeedId,
    /// (3): first materialized stream position (inclusive).
    pub low: u64,
    /// (3): one past the last materialized stream position (exclusive).
    pub high: u64,
    /// (4): the highest stream position ever handed to the rejection sampler
    /// (or assigned during initialization).
    pub max_used: u64,
    /// (5): the stream position currently assigned to each DB version.
    pub assignment: Vec<u64>,
}

impl TsSeed {
    /// Create the TS-seed for a stream with `num_versions` DB versions and
    /// `materialized` values available, using the initial MCDB-style mapping
    /// "the i-th value in each stream is mapped to the i-th DB version"
    /// (paper Appendix A.1).
    pub fn new(seed: SeedId, num_versions: usize, materialized: u64) -> Self {
        assert!(
            materialized >= num_versions as u64,
            "need at least one materialized value per DB version"
        );
        TsSeed {
            seed,
            low: 0,
            high: materialized,
            max_used: num_versions.saturating_sub(1) as u64,
            assignment: (0..num_versions as u64).collect(),
        }
    }

    /// Number of DB versions tracked.
    pub fn num_versions(&self) -> usize {
        self.assignment.len()
    }

    /// The stream position assigned to DB version `v`.
    pub fn assigned(&self, v: usize) -> u64 {
        self.assignment[v]
    }

    /// Assign stream position `pos` to DB version `v`, updating the
    /// "max used" bookkeeping.
    pub fn assign(&mut self, v: usize, pos: u64) {
        self.assignment[v] = pos;
        self.max_used = self.max_used.max(pos);
    }

    /// The next stream position the rejection sampler should try: "the first
    /// unused stream value" (paper §7 / Fig. 3).
    pub fn next_unused(&self) -> u64 {
        self.max_used + 1
    }

    /// Whether position `pos` is materialized in the Gibbs tuples.
    pub fn is_materialized(&self, pos: u64) -> bool {
        (self.low..self.high).contains(&pos)
    }

    /// True when the next candidate position is beyond the materialized
    /// range, i.e. the Gibbs Looper "has run out of data" for this stream
    /// and the query plan must be re-run (paper §9).
    pub fn needs_replenish(&self) -> bool {
        self.next_unused() >= self.high
    }

    /// Record that `count` additional stream positions have been materialized
    /// (the outcome of a replenishment run).
    pub fn extend_materialized(&mut self, count: u64) {
        self.high += count;
    }

    /// Overwrite version `dst`'s assignment with version `src`'s — the
    /// cloning step, which the paper performs as "the column in each TS-seed
    /// that records the assignment for DB version two is simply copied to the
    /// column for version one" (Appendix A.2, Fig. 4(b)).
    pub fn clone_version(&mut self, dst: usize, src: usize) {
        self.assignment[dst] = self.assignment[src];
    }

    /// Rebuild the assignment vector for a new set of versions, where new
    /// version `v` takes its assignment from old version `sources[v]`.
    /// Used when the version count changes between bootstrapping steps
    /// (Algorithm 3 allows `n_{i+1} ≠ n_i`, and the final step clones up to
    /// `l` versions).
    pub fn reassign_from(&mut self, sources: &[usize]) {
        let new_assignment: Vec<u64> = sources.iter().map(|&s| self.assignment[s]).collect();
        self.assignment = new_assignment;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mapping_is_identity() {
        let ts = TsSeed::new(42, 4, 100);
        assert_eq!(ts.assignment, vec![0, 1, 2, 3]);
        assert_eq!(ts.max_used, 3);
        assert_eq!(ts.next_unused(), 4);
        assert_eq!(ts.num_versions(), 4);
        assert!(!ts.needs_replenish());
        assert!(ts.is_materialized(0));
        assert!(ts.is_materialized(99));
        assert!(!ts.is_materialized(100));
    }

    #[test]
    #[should_panic(expected = "need at least one materialized value per DB version")]
    fn too_few_materialized_values_panics() {
        TsSeed::new(1, 10, 5);
    }

    #[test]
    fn assignment_updates_track_max_used() {
        let mut ts = TsSeed::new(1, 2, 10);
        // Fig. 3(b)-(c): version one moves to stream position 2, version two
        // rejects position 3 and accepts position 4.
        ts.assign(0, 2);
        assert_eq!(ts.max_used, 2);
        assert_eq!(ts.next_unused(), 3);
        ts.assign(1, 4);
        assert_eq!(ts.max_used, 4);
        assert_eq!(ts.assigned(0), 2);
        assert_eq!(ts.assigned(1), 4);
        // Assigning an older position never decreases max_used.
        ts.assign(0, 1);
        assert_eq!(ts.max_used, 4);
    }

    #[test]
    fn replenishment_detection_and_extension() {
        let mut ts = TsSeed::new(9, 2, 5);
        ts.assign(0, 4);
        assert!(
            ts.needs_replenish(),
            "next unused (5) is beyond the materialized range"
        );
        ts.extend_materialized(5);
        assert!(!ts.needs_replenish());
        assert_eq!(ts.high, 10);
        assert!(ts.is_materialized(9));
    }

    #[test]
    fn cloning_copies_assignment_columns() {
        let mut ts = TsSeed::new(3, 4, 20);
        ts.assign(2, 7);
        ts.assign(3, 9);
        // Overwrite non-elite versions 0 and 1 with clones of 2 and 3.
        ts.clone_version(0, 2);
        ts.clone_version(1, 3);
        assert_eq!(ts.assignment, vec![7, 9, 7, 9]);
    }

    #[test]
    fn reassignment_handles_version_count_changes() {
        let mut ts = TsSeed::new(5, 4, 50);
        ts.assign(1, 11);
        ts.assign(3, 13);
        // Final stage: clone elites {1, 3} out to 5 versions round-robin.
        ts.reassign_from(&[1, 3, 1, 3, 1]);
        assert_eq!(ts.assignment, vec![11, 13, 11, 13, 11]);
        assert_eq!(ts.num_versions(), 5);
        assert_eq!(ts.max_used, 13);
    }

    #[test]
    fn paper_figure_4b_trace() {
        // Fig. 4(a) -> 4(b): with two versions assigned positions (V1, V2) =
        // (5,5) for seed2-style streams and (4,4) after the copy.  We model
        // one seed: before cloning V1 = 3, V2 = 5; after cloning the elite V2
        // over V1 both read 5.
        let mut ts = TsSeed::new(27, 2, 1000);
        ts.assign(0, 3);
        ts.assign(1, 5);
        ts.clone_version(0, 1);
        assert_eq!(ts.assignment, vec![5, 5]);
        assert_eq!(ts.max_used, 5);
    }
}
