//! MCDB-R's contribution: tail sampling in the database.
//!
//! This crate implements everything the paper adds on top of MCDB:
//!
//! * [`params`] — the Appendix C theory: the mean-squared relative error
//!   (MSRE) of the staged quantile estimator, the `g_m` / `h_c` functions,
//!   Theorem 1's optimal choice of the number of bootstrapping steps `m*`
//!   (with `n_i = N/m` and `p_i = p^{1/m}`), and the `w(N)` curve used to
//!   pick the total sample budget `N` for a target MSRE.
//! * [`gibbs`] — Algorithms 1 and 2: the systematic Gibbs sampler for a
//!   vector of independent components conditioned on `Q(X) ≥ c`, with the
//!   rejection-based conditional generator and acceptance accounting (used
//!   directly by the Appendix B applicability experiments).
//! * [`cloner`] — Algorithm 3 in its statistical (non-database) form: purge
//!   the non-elite particles, clone the elites, re-establish independence via
//!   Gibbs updates.  This is the reference implementation that the
//!   database-level Gibbs Looper is validated against.
//! * [`ts_seed`] — TS-seeds (paper §6): the PRNG seed plus the bookkeeping
//!   that maps each DB version to its currently assigned stream position,
//!   tracks the materialized range, and records the highest position ever
//!   used by the rejection sampler.
//! * [`looper`] — the `GibbsLooper` operator (paper §7 and Appendix A): runs
//!   an aggregation-query plan once over Gibbs tuples, then performs the
//!   bootstrapped purge/clone/perturb iterations seed-major (amortizing data
//!   access exactly as the paper's disk-based priority queue does), pulling
//!   up multi-stream selection predicates, re-running the plan when a stream
//!   block is exhausted (§9), and finally emitting `l` samples from the tail
//!   together with the extreme-quantile estimate.

#![warn(missing_docs)]

pub mod cloner;
pub mod gibbs;
pub mod looper;
pub mod params;
pub mod ts_seed;

pub use cloner::{ScalarCloner, ScalarClonerReport};
pub use gibbs::{GibbsStats, IndependentSumModel};
pub use looper::{GibbsLooper, TailSampleResult, TailSamplingConfig};
pub use params::{optimal_m, staged_parameters, StagedParameters};
pub use ts_seed::TsSeed;
