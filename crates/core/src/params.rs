//! Parameter selection for the tail sampler (paper Appendix C).
//!
//! Algorithm 3 has free parameters: the number of bootstrapping steps `m`,
//! the per-step sample counts `n_1..n_m`, and the per-step tail probabilities
//! `p_1..p_m` (with `∏ p_i = p` and `Σ n_i = N`).  Appendix C shows that the
//! mean-squared relative error (MSRE) of the final tail probability,
//! `E[((F̄₀(θ̂ₘ) − p)/p)²]`, equals
//!
//! ```text
//! u(ν, ρ, m) = h₁(ν,ρ,m) · ( h₂(ν,ρ,m)/p² − 2/p ) + 1
//! hc(ν,ρ,m) = ∏ᵢ (nᵢ pᵢ + c) / (nᵢ + c)
//! ```
//!
//! and that `h_c` is minimized (Theorem 1) by splitting the budget evenly —
//! `nᵢ = N/m`, `pᵢ = p^{1/m}` — with
//!
//! ```text
//! g_m(N, p, c) = ( ((N/m) p^{1/m} + c) / (N/m + c) )^m
//! m*_c = min{ m ≥ 1 : g_m(N,p,c) < g_{m+1}(N,p,c) }
//! ```
//!
//! Finally `w(N) = g_{m*}(N,p,1)·(g_{m*}(N,p,2)/p² − 2/p) + 1` is the MSRE of
//! the optimized sampler as a function of the total budget `N`, and the
//! budget needed for a target MSRE `ε` is `min{N : w(N) ≤ ε}`.

/// The staged parameters Algorithm 3 actually runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedParameters {
    /// Total number of samples across all bootstrapping steps.
    pub total_samples: usize,
    /// Target upper-tail probability `p`.
    pub p: f64,
    /// Number of bootstrapping steps `m`.
    pub m: usize,
    /// Per-step sample size `n = N/m` (identical for every step).
    pub n_per_step: usize,
    /// Per-step tail probability `p^{1/m}` (identical for every step).
    pub p_per_step: f64,
    /// Approximate MSRE achieved by these parameters.
    pub msre: f64,
}

impl StagedParameters {
    /// Expanded per-step sample sizes `n_1..n_m`.
    pub fn step_sizes(&self) -> Vec<usize> {
        vec![self.n_per_step; self.m]
    }

    /// Expanded per-step tail probabilities `p_1..p_m`.
    pub fn step_probabilities(&self) -> Vec<f64> {
        vec![self.p_per_step; self.m]
    }

    /// The intermediate quantile levels `1 - p^{i/m}` after each step —
    /// §3.3's point that with `p = 0.001`, `m = 4` each step only estimates a
    /// `1 - 0.001^{1/4} ≈ 0.82`-quantile.
    pub fn intermediate_quantile_levels(&self) -> Vec<f64> {
        (1..=self.m)
            .map(|i| 1.0 - self.p.powf(i as f64 / self.m as f64))
            .collect()
    }
}

/// `g_m(N, p, c)` from Appendix C.
pub fn g_m(n_total: f64, p: f64, c: f64, m: usize) -> f64 {
    let m_f = m as f64;
    let n_per = n_total / m_f;
    (((n_per * p.powf(1.0 / m_f)) + c) / (n_per + c)).powi(m as i32)
}

/// `h_c(ν, ρ, m) = ∏ᵢ (nᵢ pᵢ + c)/(nᵢ + c)` for arbitrary stage vectors.
pub fn h_c(ns: &[f64], ps: &[f64], c: f64) -> f64 {
    assert_eq!(ns.len(), ps.len(), "stage vectors must have equal length");
    ns.iter()
        .zip(ps)
        .map(|(&n, &p)| (n * p + c) / (n + c))
        .product()
}

/// The MSRE `u(ν, ρ, m)` of Appendix C for arbitrary stage vectors.
pub fn msre(ns: &[f64], ps: &[f64], p: f64) -> f64 {
    let h1 = h_c(ns, ps, 1.0);
    let h2 = h_c(ns, ps, 2.0);
    h1 * (h2 / (p * p) - 2.0 / p) + 1.0
}

/// The MSRE of the *optimal even split* with `m` stages (`nᵢ = N/m`,
/// `pᵢ = p^{1/m}`).
pub fn msre_even(n_total: usize, p: f64, m: usize) -> f64 {
    let g1 = g_m(n_total as f64, p, 1.0, m);
    let g2 = g_m(n_total as f64, p, 2.0, m);
    g1 * (g2 / (p * p) - 2.0 / p) + 1.0
}

/// Theorem 1's `m*_c`: the first `m` at which `g_m` stops decreasing.
pub fn optimal_m_for_c(n_total: usize, p: f64, c: f64) -> usize {
    assert!(n_total >= 1, "need at least one sample");
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must lie in (0,1)");
    let n_f = n_total as f64;
    let mut m = 1usize;
    // m can never usefully exceed N (each stage needs at least one sample).
    while m < n_total && g_m(n_f, p, c, m) >= g_m(n_f, p, c, m + 1) {
        m += 1;
    }
    m
}

/// Theorem 1 + the summary procedure of Appendix C: compute `m*₁` and `m*₂`,
/// pick whichever minimizes the MSRE, and return the resulting parameters.
pub fn optimal_m(n_total: usize, p: f64) -> usize {
    let m1 = optimal_m_for_c(n_total, p, 1.0);
    let m2 = optimal_m_for_c(n_total, p, 2.0);
    if msre_even(n_total, p, m1) <= msre_even(n_total, p, m2) {
        m1
    } else {
        m2
    }
}

/// Compute the full staged-parameter set for a budget of `n_total` samples
/// and target tail probability `p`.
pub fn staged_parameters(n_total: usize, p: f64) -> StagedParameters {
    let m = optimal_m(n_total, p);
    staged_parameters_with_m(n_total, p, m)
}

/// Staged parameters for an explicitly chosen `m` (used by the ablation that
/// sweeps `m` around `m*`).
pub fn staged_parameters_with_m(n_total: usize, p: f64, m: usize) -> StagedParameters {
    assert!(m >= 1 && m <= n_total, "m must lie in 1..=N");
    let n_per_step = (n_total / m).max(1);
    StagedParameters {
        total_samples: n_total,
        p,
        m,
        n_per_step,
        p_per_step: p.powf(1.0 / m as f64),
        msre: msre_even(n_total, p, m),
    }
}

/// `w(N)`: the MSRE of the optimized sampler as a function of the budget.
pub fn w_of_n(n_total: usize, p: f64) -> f64 {
    msre_even(n_total, p, optimal_m(n_total, p))
}

/// The smallest budget `N` whose optimized MSRE is at most `target`
/// (`min{N : w(N) ≤ target}`), located by doubling + binary search.
pub fn budget_for_msre(p: f64, target: f64) -> usize {
    assert!(target > 0.0, "target MSRE must be positive");
    let mut hi = 8usize;
    while w_of_n(hi, p) > target && hi < (1 << 30) {
        hi *= 2;
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if w_of_n(mid, p) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_satisfies_the_constraints() {
        let params = staged_parameters(1000, 0.001);
        // ∏ pᵢ = p and Σ nᵢ ≈ N (up to integer division).
        let prod: f64 = params.step_probabilities().iter().product();
        assert!((prod - 0.001).abs() < 1e-12, "prod = {prod}");
        let total: usize = params.step_sizes().iter().sum();
        assert!(total <= 1000 && total >= 1000 - params.m);
        assert_eq!(params.step_sizes().len(), params.m);
    }

    #[test]
    fn paper_example_intermediate_quantiles() {
        // §3.3: p = 0.001, m = 4 ⇒ each stage estimates a ≈0.82-quantile.
        let params = staged_parameters_with_m(1000, 0.001, 4);
        let first = params.intermediate_quantile_levels()[0];
        assert!((first - (1.0 - 0.001f64.powf(0.25))).abs() < 1e-12);
        assert!((0.80..0.85).contains(&first), "first stage level = {first}");
        // The last level is the extreme quantile itself.
        let last = *params.intermediate_quantile_levels().last().unwrap();
        assert!((last - 0.999).abs() < 1e-12);
    }

    #[test]
    fn appendix_d_parameterization_is_near_optimal() {
        // Appendix D runs m = 5, p^{1/m} = 0.25 ⇒ p = 0.25^5 ≈ 0.000977 with
        // N = 500 or 1000.  The theory's optimal m for those budgets should be
        // close to 5 and the per-step probability close to 0.25.
        for &n in &[500usize, 1000] {
            let params = staged_parameters(n, 0.25f64.powi(5));
            assert!(
                (3..=8).contains(&params.m),
                "N = {n}: optimal m = {} out of expected range",
                params.m
            );
            let with_m5 = staged_parameters_with_m(n, 0.25f64.powi(5), 5);
            assert!((with_m5.p_per_step - 0.25).abs() < 1e-12);
            // The paper's choice is within a small factor of the optimum.
            assert!(with_m5.msre <= 2.0 * params.msre + 1e-9);
        }
    }

    #[test]
    fn g_m_has_an_interior_minimum() {
        // For extreme p, a single stage is terrible, many stages are wasteful:
        // g_m should decrease then increase.
        let n = 1000.0;
        let p = 0.001;
        let values: Vec<f64> = (1..12).map(|m| g_m(n, p, 1.0, m)).collect();
        let m_star = optimal_m_for_c(1000, p, 1.0);
        assert!(m_star > 1 && m_star < 11, "m* = {m_star}");
        // g is decreasing up to m*, then the next value is larger.
        for m in 1..m_star {
            assert!(values[m - 1] >= values[m], "g not decreasing at m = {m}");
        }
        assert!(
            values[m_star - 1] < values[m_star],
            "g should increase after m*"
        );
    }

    #[test]
    fn h_c_matches_g_m_on_even_splits() {
        let n_total = 600.0;
        let p: f64 = 0.01;
        for m in 1..=6usize {
            let ns = vec![n_total / m as f64; m];
            let ps = vec![p.powf(1.0 / m as f64); m];
            for &c in &[1.0, 2.0] {
                assert!((h_c(&ns, &ps, c) - g_m(n_total, p, c, m)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn even_split_beats_uneven_splits() {
        // Theorem 1: the even split minimizes h_c subject to the constraints.
        let p: f64 = 0.01;
        let n_total = 400.0;
        let m = 3;
        let even_ns = vec![n_total / 3.0; 3];
        let even_ps = vec![p.powf(1.0 / 3.0); 3];
        let even = msre(&even_ns, &even_ps, p);
        // A few feasible but uneven alternatives.
        let alternatives = [
            (vec![200.0, 100.0, 100.0], vec![p.powf(1.0 / 3.0); 3]),
            (vec![n_total / 3.0; 3], vec![0.05, 0.2, p / (0.05 * 0.2)]),
            (vec![300.0, 50.0, 50.0], vec![0.1, 0.5, p / 0.05]),
        ];
        for (ns, ps) in alternatives {
            let prod: f64 = ps.iter().product();
            assert!((prod - p).abs() < 1e-9, "alternative must stay feasible");
            assert!(
                even <= msre(&ns, &ps, p) + 1e-9,
                "even split {even} should not exceed {}",
                msre(&ns, &ps, p)
            );
        }
        let _ = m;
    }

    #[test]
    fn w_of_n_decreases_and_budget_lookup_inverts_it() {
        let p = 0.001;
        let w100 = w_of_n(100, p);
        let w1000 = w_of_n(1000, p);
        let w10000 = w_of_n(10_000, p);
        assert!(w100 > w1000 && w1000 > w10000, "w must decrease with N");
        // budget_for_msre finds a budget whose MSRE meets the target, and the
        // next smaller power-of-two-ish budget does not massively undershoot.
        let target = 0.05;
        let n = budget_for_msre(p, target);
        assert!(w_of_n(n, p) <= target);
        assert!(
            n > 100,
            "a 5% MSRE at p=0.001 needs a nontrivial budget, got {n}"
        );
    }

    #[test]
    fn single_stage_recovers_binomial_relative_variance() {
        // With m = 1 the estimator is the plain order statistic, whose
        // relative MSE is roughly (1-p)/(N p) for small p.
        let p = 0.05;
        let n = 2000usize;
        let theory = (1.0 - p) / (n as f64 * p);
        let computed = msre_even(n, p, 1);
        assert!(
            (computed - theory).abs() < 0.35 * theory,
            "computed {computed} vs binomial approximation {theory}"
        );
    }

    #[test]
    #[should_panic(expected = "m must lie in 1..=N")]
    fn m_larger_than_n_panics() {
        staged_parameters_with_m(10, 0.1, 11);
    }
}
