//! The systematic Gibbs sampler of paper §3.1 (Algorithms 1 and 2).
//!
//! The setting is the one the paper uses to explain the method: a random
//! vector `X = (X₁, …, X_r)` with *independent* components, an aggregation
//! function `Q(x) = x₁ + … + x_r`, and the conditional target distribution
//! `h(x; c) = P(X = x | Q(X) ≥ c)`.  One systematic Gibbs updating step
//! resamples each component in turn from its conditional distribution given
//! the others, which — by independence — is just the marginal `h_i`
//! restricted to `{u : u + Σ_{j≠i} x_j ≥ c}`; Algorithm 2 samples it by
//! rejection.
//!
//! The database-level Gibbs Looper performs exactly these updates, with the
//! marginals replaced by VG-function streams and `Q` replaced by the query.
//! This module keeps the statistical core separate so it can be validated
//! against closed forms and used by the Appendix B applicability experiments
//! (heavy-tailed marginals make the rejection step collapse).

use mcdbr_prng::Pcg64;
use mcdbr_vg::Distribution;

/// Acceptance/rejection accounting for a Gibbs run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GibbsStats {
    /// Number of accepted component updates.
    pub accepted: u64,
    /// Number of rejected candidate draws.
    pub rejected: u64,
    /// Number of component updates abandoned because the rejection loop hit
    /// its candidate budget (the state is left unchanged for that component).
    pub exhausted: u64,
}

impl GibbsStats {
    /// Total candidate draws.
    pub fn candidates(&self) -> u64 {
        self.accepted + self.rejected
    }

    /// Fraction of candidate draws that were accepted (1.0 if none drawn).
    pub fn acceptance_rate(&self) -> f64 {
        if self.candidates() == 0 {
            1.0
        } else {
            self.accepted as f64 / self.candidates() as f64
        }
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: GibbsStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.exhausted += other.exhausted;
    }
}

/// A sum query over independent scalar components — the §3.1 example model.
#[derive(Debug, Clone)]
pub struct IndependentSumModel {
    /// Marginal distribution of each component (`h_i`).
    pub components: Vec<Distribution>,
}

impl IndependentSumModel {
    /// Build a model from per-component marginals.
    pub fn new(components: Vec<Distribution>) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        IndependentSumModel { components }
    }

    /// A model with `r` i.i.d. components.
    pub fn iid(marginal: Distribution, r: usize) -> Self {
        Self::new(vec![marginal; r])
    }

    /// Number of components `r`.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Draw an unconditional sample of the full vector (used to initialize
    /// Algorithm 3's particle set).
    pub fn sample(&self, gen: &mut Pcg64) -> Vec<f64> {
        self.components.iter().map(|d| d.sample(gen)).collect()
    }

    /// `Q(x)`: the sum aggregate.
    pub fn q(&self, x: &[f64]) -> f64 {
        x.iter().sum()
    }

    /// Mean of `Q(X)` (when every component mean exists).
    pub fn q_mean(&self) -> Option<f64> {
        self.components.iter().map(|d| d.mean()).sum()
    }

    /// Variance of `Q(X)` (when every component variance exists); valid
    /// because the components are independent.
    pub fn q_variance(&self) -> Option<f64> {
        self.components.iter().map(|d| d.variance()).sum()
    }

    /// One invocation of GENCOND (Algorithm 2): sample component `i`'s
    /// conditional distribution given the rest of `x` and the constraint
    /// `Q ≥ cutoff`, by rejection from the marginal.
    ///
    /// Returns `Some(u)` and the number of rejected candidates on success, or
    /// `None` if `max_candidates` draws were all rejected (the caller keeps
    /// the old value; the paper's looper would keep scanning the stream, and
    /// its analysis in Appendix B is precisely about when this loop becomes
    /// hopeless).
    pub fn gencond(
        &self,
        x: &[f64],
        i: usize,
        cutoff: f64,
        gen: &mut Pcg64,
        max_candidates: u64,
    ) -> (Option<f64>, u64) {
        let rest: f64 = self.q(x) - x[i];
        let mut rejected = 0;
        while rejected < max_candidates {
            let u = self.components[i].sample(gen);
            if u + rest >= cutoff {
                return (Some(u), rejected);
            }
            rejected += 1;
        }
        (None, rejected)
    }

    /// GIBBS(X, k, c) — Algorithm 1 with the rejection-based GENCOND: perform
    /// `k` systematic updating steps in place, never letting `Q` drop below
    /// `cutoff`.  Returns acceptance statistics.
    pub fn gibbs_update(
        &self,
        x: &mut [f64],
        cutoff: f64,
        k: usize,
        gen: &mut Pcg64,
        max_candidates: u64,
    ) -> GibbsStats {
        assert_eq!(x.len(), self.dim(), "state dimension mismatch");
        debug_assert!(
            self.q(x) >= cutoff - 1e-9,
            "initial state must already satisfy Q(x) >= cutoff"
        );
        let mut stats = GibbsStats::default();
        for _ in 0..k {
            for i in 0..self.dim() {
                let (candidate, rejected) = self.gencond(x, i, cutoff, gen, max_candidates);
                stats.rejected += rejected;
                match candidate {
                    Some(u) => {
                        x[i] = u;
                        stats.accepted += 1;
                    }
                    None => stats.exhausted += 1,
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_vg::math::std_normal_cdf;

    fn normal_model(r: usize) -> IndependentSumModel {
        IndependentSumModel::iid(Distribution::Normal { mean: 0.0, sd: 1.0 }, r)
    }

    #[test]
    fn model_moments() {
        let m = IndependentSumModel::new(vec![
            Distribution::Normal { mean: 3.0, sd: 1.0 },
            Distribution::Normal { mean: 4.0, sd: 1.0 },
            Distribution::Normal { mean: 5.0, sd: 1.0 },
        ]);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.q_mean(), Some(12.0));
        assert_eq!(m.q_variance(), Some(3.0));
        assert_eq!(m.q(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn gibbs_updates_never_violate_the_cutoff() {
        let model = normal_model(8);
        let mut gen = Pcg64::new(1);
        // Start from an unconditional sample that happens to be large.
        let cutoff = 2.0;
        let mut x = loop {
            let x = model.sample(&mut gen);
            if model.q(&x) >= cutoff {
                break x;
            }
        };
        for _ in 0..200 {
            model.gibbs_update(&mut x, cutoff, 1, &mut gen, 10_000);
            assert!(model.q(&x) >= cutoff - 1e-9, "Q = {}", model.q(&x));
        }
    }

    #[test]
    fn stationarity_preserves_the_conditional_distribution() {
        // Start particles exactly from h(.; c) by rejection, apply k = 1 Gibbs
        // steps, and verify the distribution of Q is unchanged: it should
        // match the truncated-normal conditional P(S | S >= c) for
        // S ~ Normal(0, r).
        let r = 4;
        let model = normal_model(r);
        let sd = (r as f64).sqrt();
        let cutoff = 1.5 * sd; // a mild tail so rejection initialization is feasible
        let mut gen = Pcg64::new(7);
        let mut after: Vec<f64> = Vec::new();
        let n_particles = 4_000;
        for _ in 0..n_particles {
            let mut x = loop {
                let x = model.sample(&mut gen);
                if model.q(&x) >= cutoff {
                    break x;
                }
            };
            model.gibbs_update(&mut x, cutoff, 1, &mut gen, 100_000);
            after.push(model.q(&x));
        }
        // Compare the empirical mean of Q after updating with the analytic
        // mean of a truncated normal: mean = sd * φ(a)/(1-Φ(a)) with a = c/sd.
        let a = cutoff / sd;
        let phi = (-(a * a) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let truncated_mean = sd * phi / (1.0 - std_normal_cdf(a));
        let emp_mean: f64 = after.iter().sum::<f64>() / after.len() as f64;
        assert!(
            (emp_mean - truncated_mean).abs() < 0.05 * truncated_mean,
            "empirical {emp_mean} vs analytic {truncated_mean}"
        );
        // And nothing fell below the cutoff.
        assert!(after.iter().all(|&q| q >= cutoff - 1e-9));
    }

    #[test]
    fn chains_from_the_same_state_decorrelate() {
        // §3.1: two chains started from the same state but updated
        // independently become approximately independent.  We check that the
        // correlation between the two chains' Q values after a few steps is
        // small compared to the (perfect) correlation at step zero.
        let model = normal_model(6);
        let cutoff = 2.0;
        let mut gen = Pcg64::new(3);
        let n = 1_500;
        let mut q_a = Vec::with_capacity(n);
        let mut q_b = Vec::with_capacity(n);
        for _ in 0..n {
            let start = loop {
                let x = model.sample(&mut gen);
                if model.q(&x) >= cutoff {
                    break x;
                }
            };
            let mut a = start.clone();
            let mut b = start;
            model.gibbs_update(&mut a, cutoff, 3, &mut gen, 100_000);
            model.gibbs_update(&mut b, cutoff, 3, &mut gen, 100_000);
            q_a.push(model.q(&a));
            q_b.push(model.q(&b));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mb) = (mean(&q_a), mean(&q_b));
        let cov: f64 = q_a
            .iter()
            .zip(&q_b)
            .map(|(a, b)| (a - ma) * (b - mb))
            .sum::<f64>()
            / n as f64;
        let var_a: f64 = q_a.iter().map(|a| (a - ma) * (a - ma)).sum::<f64>() / n as f64;
        let var_b: f64 = q_b.iter().map(|b| (b - mb) * (b - mb)).sum::<f64>() / n as f64;
        let corr = cov / (var_a * var_b).sqrt();
        assert!(
            corr.abs() < 0.25,
            "chains should decorrelate, corr = {corr}"
        );
    }

    #[test]
    fn light_tails_accept_quickly_heavy_tails_do_not() {
        // Appendix B: for a SUM of heavy-tailed components, extreme databases
        // are extreme because of one huge component, and replacing that
        // component makes Q drop below the cutoff — so rejection rates blow
        // up.  Light-tailed (normal) components spread the exceedance across
        // components and accept quickly.
        let r = 20;
        let mut gen = Pcg64::new(11);

        let run = |marginal: Distribution, tail_prob: f64, gen: &mut Pcg64| -> f64 {
            let model = IndependentSumModel::iid(marginal, r);
            // Locate an empirical (1 - tail_prob) quantile of Q by simulation.
            let mut qs: Vec<f64> = (0..4_000).map(|_| model.q(&model.sample(gen))).collect();
            qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let cutoff = qs[((1.0 - tail_prob) * qs.len() as f64) as usize];
            // Find a starting state in the tail, then measure acceptance.
            let mut x = loop {
                let x = model.sample(gen);
                if model.q(&x) >= cutoff {
                    break x;
                }
            };
            let mut stats = GibbsStats::default();
            for _ in 0..30 {
                stats.merge(model.gibbs_update(&mut x, cutoff, 1, gen, 2_000));
            }
            stats.acceptance_rate()
        };

        let normal_rate = run(Distribution::Normal { mean: 1.0, sd: 1.0 }, 0.02, &mut gen);
        let pareto_rate = run(
            Distribution::Pareto {
                scale: 1.0,
                shape: 1.3,
            },
            0.02,
            &mut gen,
        );
        assert!(normal_rate > 0.25, "normal acceptance rate = {normal_rate}");
        assert!(
            pareto_rate < normal_rate,
            "heavy tails must be harder: pareto {pareto_rate} vs normal {normal_rate}"
        );
    }

    #[test]
    fn gencond_reports_rejections_and_exhaustion() {
        let model = normal_model(2);
        let mut gen = Pcg64::new(5);
        // Impossible cutoff with a tiny candidate budget: must exhaust.
        let x = [0.0, 0.0];
        let (candidate, rejected) = model.gencond(&x, 0, 1_000.0, &mut gen, 50);
        assert!(candidate.is_none());
        assert_eq!(rejected, 50);
        // Trivial cutoff: accepted immediately.
        let (candidate, rejected) = model.gencond(&x, 0, -1_000.0, &mut gen, 50);
        assert!(candidate.is_some());
        assert_eq!(rejected, 0);
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = GibbsStats {
            accepted: 3,
            rejected: 1,
            exhausted: 0,
        };
        a.merge(GibbsStats {
            accepted: 1,
            rejected: 3,
            exhausted: 2,
        });
        assert_eq!(a.accepted, 4);
        assert_eq!(a.rejected, 4);
        assert_eq!(a.exhausted, 2);
        assert_eq!(a.candidates(), 8);
        assert!((a.acceptance_rate() - 0.5).abs() < 1e-12);
        assert_eq!(GibbsStats::default().acceptance_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn dimension_mismatch_panics() {
        let model = normal_model(3);
        let mut gen = Pcg64::new(1);
        let mut x = vec![10.0, 10.0];
        model.gibbs_update(&mut x, 0.0, 1, &mut gen, 10);
    }
}
