//! Algorithm 3 — the Gibbs-cloner tail sampler — in its statistical form.
//!
//! [`ScalarCloner`] runs the paper's basic tail-sampling procedure over an
//! [`IndependentSumModel`] rather than over a database: maintain a set of
//! particles, and at each bootstrapping step (1) purge all but the top
//! `100·pᵢ%` "elite" particles, (2) clone the elites back up to the next
//! stage's size, and (3) perturb every particle with the Gibbs sampler so the
//! clones drift apart while staying above the running cutoff.
//!
//! The database engine (`looper`) follows exactly the same control flow but
//! replaces the marginal samplers with VG streams and `Q` with the query;
//! this scalar version is the ground truth the engine is validated against,
//! and it also powers the parameter-selection and applicability experiments
//! (E5, E7) which need thousands of independent cloner runs.

use mcdbr_prng::Pcg64;

use crate::gibbs::{GibbsStats, IndependentSumModel};
use crate::params::StagedParameters;

/// Report of one scalar tail-sampling run.
#[derive(Debug, Clone)]
pub struct ScalarClonerReport {
    /// Estimate of the `(1-p)`-quantile (the final cutoff).
    pub quantile_estimate: f64,
    /// Q-values of the final particle set (samples from the tail).
    pub tail_samples: Vec<f64>,
    /// The cutoff after each bootstrapping step (the `θ̂ᵢ` sequence).
    pub cutoffs: Vec<f64>,
    /// Aggregate Gibbs acceptance statistics.
    pub gibbs: GibbsStats,
    /// Total unconditional samples drawn during initialization.
    pub initial_samples: usize,
}

/// The scalar Gibbs cloner (paper Algorithm 3).
#[derive(Debug, Clone)]
pub struct ScalarCloner {
    /// The model defining component marginals and the sum query.
    pub model: IndependentSumModel,
    /// Number of Gibbs updating steps per perturbation (`k`; the paper uses 1).
    pub k: usize,
    /// Candidate budget per component update before the rejection loop gives
    /// up and keeps the previous value.
    pub max_candidates: u64,
}

impl ScalarCloner {
    /// A cloner with the paper's default `k = 1` and a generous rejection
    /// budget.
    pub fn new(model: IndependentSumModel) -> Self {
        ScalarCloner {
            model,
            k: 1,
            max_candidates: 100_000,
        }
    }

    /// Run Algorithm 3 with the given staged parameters and desired number of
    /// final tail samples `l`.
    pub fn run(&self, params: &StagedParameters, l: usize, gen: &mut Pcg64) -> ScalarClonerReport {
        let n = params.n_per_step.max(1);
        let m = params.m;
        let p_step = params.p_per_step;

        // Initialization (Algorithm 3, lines 13-16): n i.i.d. databases.
        let mut particles: Vec<Vec<f64>> = (0..n).map(|_| self.model.sample(gen)).collect();
        let initial_samples = n;

        let mut cutoffs = Vec::with_capacity(m);
        let mut gibbs = GibbsStats::default();

        for step in 0..m {
            // Line 19: the (pᵢ·|S|)-largest element becomes the new cutoff.
            let mut qs: Vec<f64> = particles.iter().map(|x| self.model.q(x)).collect();
            qs.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let elite_count =
                ((p_step * particles.len() as f64).round() as usize).clamp(1, particles.len());
            let cutoff = qs[elite_count - 1];
            cutoffs.push(cutoff);

            // Line 20: purge everything below the cutoff.
            particles.retain(|x| self.model.q(x) >= cutoff);

            // Line 21: CLONE up to the next stage's size (n for intermediate
            // steps, l for the final one; Algorithm 3 sets n_{m+1} = l).
            let next_size = if step + 1 == m { l } else { n };
            particles = clone_particles(&particles, next_size);

            // Lines 22-24: Gibbs-update every particle at the current cutoff.
            for x in &mut particles {
                gibbs.merge(
                    self.model
                        .gibbs_update(x, cutoff, self.k, gen, self.max_candidates),
                );
            }
        }

        let tail_samples: Vec<f64> = particles.iter().map(|x| self.model.q(x)).collect();
        ScalarClonerReport {
            quantile_estimate: *cutoffs.last().unwrap_or(&f64::NAN),
            tail_samples,
            cutoffs,
            gibbs,
            initial_samples,
        }
    }
}

/// `CLONE(S, n)`: duplicate each particle approximately `n / |S|` times
/// (paper §3.3), cycling through the elites so the output has exactly `n`
/// elements.
fn clone_particles(elites: &[Vec<f64>], n: usize) -> Vec<Vec<f64>> {
    assert!(!elites.is_empty(), "cannot clone an empty elite set");
    (0..n).map(|i| elites[i % elites.len()].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::staged_parameters_with_m;
    use mcdbr_vg::math::std_normal_quantile;
    use mcdbr_vg::Distribution;

    fn unit_normal_model(r: usize) -> IndependentSumModel {
        IndependentSumModel::iid(Distribution::Normal { mean: 0.0, sd: 1.0 }, r)
    }

    #[test]
    fn clone_cycles_through_elites() {
        let elites = vec![vec![1.0], vec![2.0]];
        let cloned = clone_particles(&elites, 5);
        assert_eq!(cloned.len(), 5);
        assert_eq!(cloned[0], vec![1.0]);
        assert_eq!(cloned[1], vec![2.0]);
        assert_eq!(cloned[4], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot clone an empty elite set")]
    fn cloning_nothing_panics() {
        clone_particles(&[], 3);
    }

    #[test]
    fn cutoffs_increase_across_bootstrapping_steps() {
        let model = unit_normal_model(10);
        let cloner = ScalarCloner::new(model);
        let params = staged_parameters_with_m(400, 0.01, 3);
        let mut gen = Pcg64::new(2);
        let report = cloner.run(&params, 50, &mut gen);
        assert_eq!(report.cutoffs.len(), 3);
        for w in report.cutoffs.windows(2) {
            assert!(
                w[1] >= w[0],
                "cutoffs must be non-decreasing: {:?}",
                report.cutoffs
            );
        }
        assert_eq!(report.tail_samples.len(), 50);
        assert!(report
            .tail_samples
            .iter()
            .all(|&q| q >= report.quantile_estimate - 1e-9));
        assert_eq!(report.initial_samples, params.n_per_step);
    }

    #[test]
    fn quantile_estimate_tracks_the_analytic_quantile() {
        // Q = sum of 25 unit normals ~ Normal(0, 25); the 0.99-quantile is
        // 5 * z_{0.99} ≈ 11.63.  Average the estimator over several runs to
        // smooth Monte Carlo noise.
        let model = unit_normal_model(25);
        let cloner = ScalarCloner::new(model);
        let p = 0.01;
        let params = staged_parameters_with_m(1200, p, 2);
        let truth = 5.0 * std_normal_quantile(0.99);
        let mut gen = Pcg64::new(17);
        let runs = 12;
        let mean_estimate: f64 = (0..runs)
            .map(|_| cloner.run(&params, 40, &mut gen).quantile_estimate)
            .sum::<f64>()
            / runs as f64;
        assert!(
            (mean_estimate - truth).abs() < 0.35,
            "estimate {mean_estimate} vs analytic {truth}"
        );
    }

    #[test]
    fn tail_samples_distribute_like_the_conditional_tail() {
        // The final samples should look like draws of Q conditioned on
        // exceeding the (1-p)-quantile.  For Q ~ Normal(0, r) the conditional
        // mean is sd·φ(z_p)/p above zero.
        let r = 16;
        let model = unit_normal_model(r);
        let cloner = ScalarCloner::new(model);
        let p = 0.02;
        let params = staged_parameters_with_m(1500, p, 2);
        let mut gen = Pcg64::new(23);
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..10 {
            all.extend(cloner.run(&params, 60, &mut gen).tail_samples);
        }
        let sd = (r as f64).sqrt();
        let z = std_normal_quantile(1.0 - p);
        let phi = (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let conditional_mean = sd * phi / p;
        let emp: f64 = all.iter().sum::<f64>() / all.len() as f64;
        assert!(
            (emp - conditional_mean).abs() < 0.12 * conditional_mean,
            "empirical tail mean {emp} vs analytic {conditional_mean}"
        );
    }

    #[test]
    fn more_budget_reduces_estimator_spread() {
        // Increasing N should shrink the spread of the quantile estimate —
        // the empirical counterpart of w(N) being decreasing.
        let model = unit_normal_model(12);
        let cloner = ScalarCloner::new(model);
        let p = 0.01;
        let spread = |n_total: usize, seed: u64| {
            let params = staged_parameters_with_m(n_total, p, 3);
            let mut gen = Pcg64::new(seed);
            let estimates: Vec<f64> = (0..14)
                .map(|_| cloner.run(&params, 30, &mut gen).quantile_estimate)
                .collect();
            let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
            (estimates
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f64>()
                / estimates.len() as f64)
                .sqrt()
        };
        let small = spread(150, 31);
        let large = spread(2400, 37);
        assert!(
            large < small,
            "std err should fall with budget: N=150 -> {small}, N=2400 -> {large}"
        );
    }

    #[test]
    fn heavy_tailed_components_exhaust_the_rejection_budget() {
        // Appendix B: under a Pareto marginal the rejection loop frequently
        // fails within a modest candidate budget, unlike the normal case.
        let p = 0.02;
        let params = staged_parameters_with_m(300, p, 2);
        let mut gen = Pcg64::new(41);

        let light = ScalarCloner {
            model: IndependentSumModel::iid(Distribution::Normal { mean: 1.0, sd: 1.0 }, 15),
            k: 1,
            max_candidates: 500,
        };
        let heavy = ScalarCloner {
            model: IndependentSumModel::iid(
                Distribution::Pareto {
                    scale: 1.0,
                    shape: 1.2,
                },
                15,
            ),
            k: 1,
            max_candidates: 500,
        };
        let light_report = light.run(&params, 40, &mut gen);
        let heavy_report = heavy.run(&params, 40, &mut gen);
        assert!(
            heavy_report.gibbs.acceptance_rate() < light_report.gibbs.acceptance_rate(),
            "heavy-tailed acceptance {} should be below light-tailed {}",
            heavy_report.gibbs.acceptance_rate(),
            light_report.gibbs.acceptance_rate()
        );
        assert!(heavy_report.gibbs.exhausted >= light_report.gibbs.exhausted);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_generator_seed() {
        let model = unit_normal_model(8);
        let cloner = ScalarCloner::new(model);
        let params = staged_parameters_with_m(200, 0.05, 2);
        let a = cloner.run(&params, 20, &mut Pcg64::new(99));
        let b = cloner.run(&params, 20, &mut Pcg64::new(99));
        assert_eq!(a.tail_samples, b.tail_samples);
        assert_eq!(a.cutoffs, b.cutoffs);
    }
}
