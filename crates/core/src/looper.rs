//! The `GibbsLooper` operator (paper §7 and Appendix A).
//!
//! The looper receives the stream of instantiated Gibbs tuples produced by a
//! query plan, plus the final aggregate, the pulled-up selection predicate,
//! and the file of TS-seeds, and then runs the bootstrapped tail-sampling
//! procedure of Algorithm 3 *without ever re-running the query per candidate
//! value*: DB versions are never materialized; they are "completely
//! determined by the current state of the Gibbs tuples and the TS-seeds"
//! (Appendix A.2).
//!
//! Two paper design points are reproduced exactly:
//!
//! * **Loop order** (§7): the looper iterates *seed-major* — for each TS-seed
//!   handle in increasing order it updates every DB version before moving on
//!   — rather than version-major, "thereby amortizing expensive data scans".
//!   The paper achieves the seed-major grouping with a disk-based priority
//!   queue of Gibbs tuples keyed by their smallest unprocessed TS-seed
//!   handle; this implementation achieves the same access pattern with an
//!   in-memory index from seed to the Gibbs tuples that contain it (the
//!   workloads this reproduction targets fit in memory; the ablation bench
//!   `ablation_loop_order` quantifies what the ordering buys).
//! * **Replenishment** (§9): every stream carries only a finite materialized
//!   block.  When the rejection sampler needs a position beyond the block,
//!   the looper discards nothing semantically — it asks its
//!   [`mcdbr_exec::ExecSession`] for the next block of every stream.  The
//!   session ran the deterministic plan skeleton (scans, joins, constant
//!   predicates) exactly once at prepare time; a replenishment therefore
//!   materializes *only* stream values against the cached
//!   [`mcdbr_exec::DeterministicPrefix`], which is the paper's "the
//!   `Instantiate` operation never adds stream values to a Gibbs tuple that
//!   have already been processed; it only adds new or currently assigned
//!   values" discipline with the deterministic work amortized to once per
//!   query.  Both counters — plan executions (1) and blocks materialized
//!   (1 + replenishments) — are reported so the Appendix D experiments show
//!   the cost structure directly.
//!
//! Restrictions (documented, checked, and consistent with the paper):
//! selection predicates that touch random attributes must be pulled up into
//! the final predicate (Appendix A, input 3); the aggregate must be SUM or
//! COUNT (incrementally updatable); grouping is handled by running one
//! looper per group (Appendix A, footnote 4).

use std::collections::BTreeMap;
use std::sync::Arc;

use mcdbr_exec::{AggFunc, BundleValue, ExecBackend, ExecSession, SessionCache, TupleBundle};
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_prng::SeedId;
use mcdbr_storage::{Catalog, Error, Result, Schema, Value};

use crate::gibbs::GibbsStats;
use crate::params::{optimal_m, staged_parameters_with_m, StagedParameters};
use crate::ts_seed::TsSeed;

/// Configuration of a tail-sampling run.
#[derive(Debug, Clone)]
pub struct TailSamplingConfig {
    /// Target upper-tail probability `p` (e.g. 0.001 for the 0.999-quantile).
    pub p: f64,
    /// Number of tail samples `l` to return.
    pub l: usize,
    /// Total sample budget `N` across all bootstrapping steps.
    pub total_samples: usize,
    /// Number of bootstrapping steps `m`; `None` uses the Appendix C optimum.
    pub m: Option<usize>,
    /// Gibbs updating steps `k` per perturbation (the paper uses 1).
    pub k: usize,
    /// Stream values materialized per plan execution (paper §5: the trade-off
    /// between carrying data through the plan and re-running the plan).
    pub block_size: usize,
    /// Candidate budget per component update before the rejection loop keeps
    /// the previous value.
    pub max_candidates: u64,
    /// Master seed for reproducibility.
    pub master_seed: u64,
}

impl TailSamplingConfig {
    /// A configuration with the paper's defaults (`k = 1`, 1000-value blocks)
    /// for the given tail probability, sample count, and budget.
    pub fn new(p: f64, l: usize, total_samples: usize) -> Self {
        TailSamplingConfig {
            p,
            l,
            total_samples,
            m: None,
            k: 1,
            block_size: 1000,
            max_candidates: 100_000,
            master_seed: 0x4D43_4442, // ASCII "MCDB"
        }
    }

    /// Override the number of bootstrapping steps.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Override the master seed.
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Override the block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Resolve the staged parameters this configuration implies.
    pub fn staged(&self) -> StagedParameters {
        let m = self
            .m
            .unwrap_or_else(|| optimal_m(self.total_samples, self.p));
        staged_parameters_with_m(self.total_samples, self.p, m)
    }
}

/// The output of a tail-sampling run.
#[derive(Debug, Clone)]
pub struct TailSampleResult {
    /// Estimate of the `(1-p)`-quantile (the final cutoff `θ̂`).
    pub quantile_estimate: f64,
    /// The `l` query-result samples from the tail.
    pub tail_samples: Vec<f64>,
    /// Cutoff after each bootstrapping step.
    pub cutoffs: Vec<f64>,
    /// Gibbs acceptance statistics across the whole run.
    pub gibbs: GibbsStats,
    /// Number of times deterministic plan work ran.  With a cacheable plan
    /// this is at most 1 — the skeleton pass — no matter how many
    /// replenishments follow, and exactly 0 when the looper's
    /// [`SessionCache`] already held the plan's skeleton (e.g. a repeated
    /// run, or a shared cache warmed by another looper under any master
    /// seed).
    pub plan_executions: usize,
    /// Number of stream blocks materialized (1 initial + replenishments).
    pub blocks_materialized: usize,
    /// 1 when this run's session came out of the session cache, else 0
    /// (summable across runs, mirroring the engine-level counters).  For
    /// cacheable plans a hit means phase 1 was skipped entirely; for
    /// uncacheable plans (`Split` over a random column) a hit only skips
    /// re-detection — `plan_executions` still counts one full run per block,
    /// exactly as the fallback contract demands.
    pub skeleton_hits: usize,
    /// 1 when this run's session had to run the deterministic skeleton
    /// pass (or the uncacheability detection), else 0.
    pub skeleton_misses: usize,
    /// Number of replenishment blocks triggered by exhausted streams.
    pub replenishments: usize,
    /// Logical bytes written into pooled columnar block buffers across the
    /// run (initial block + replenishments; includes cross-shard
    /// regeneration on a sharded backend).
    pub bytes_materialized: u64,
    /// Columnar buffer acquisitions served by recycling the session's
    /// [`mcdbr_exec::BlockBufferPool`] instead of allocating — every
    /// replenishment round past the first reuses the warm buffers.
    pub buffer_reuses: u64,
    /// Total stream positions consumed across all TS-seeds.
    pub stream_positions_consumed: u64,
    /// Shard tasks this run spawned through its execution backend (0 on the
    /// in-process backend; with a [`mcdbr_exec::ShardedBackend`], counts
    /// every block materialization's shards — initial block and
    /// replenishments alike).  Attributed by snapshotting the backend's
    /// cumulative [`mcdbr_exec::ShardStats`] around the run, so a backend
    /// shared across *concurrent* runs blurs per-run attribution (see the
    /// `ShardStats` docs); results themselves are never affected.
    pub shards_spawned: usize,
    /// Nanoseconds this run's backend spent merging per-shard partials back
    /// into canonical order (0 on the in-process backend).
    pub shard_merge_ns: u64,
    /// Streams shards regenerated outside their own key ranges (cross-shard
    /// joins; 0 on the in-process backend) — duplication on top of the
    /// logical `values_materialized` count.
    pub cross_shard_regens: usize,
    /// Worker OS processes this run's backend spawned (multi-process
    /// backend only: pool fills + crash respawns).
    pub workers_spawned: usize,
    /// Shard tasks serialized and dispatched to worker processes this run
    /// (0 on in-process backends).
    pub tasks_dispatched: usize,
    /// Bytes written to worker processes this run (plans, tasks,
    /// handshakes).
    pub wire_bytes_sent: u64,
    /// Bytes read back from worker processes this run (partial bundles,
    /// stats).
    pub wire_bytes_received: u64,
    /// Workers respawned after crashes this run, with their in-flight
    /// tasks re-dispatched.
    pub worker_respawns: usize,
    /// Per-task read deadlines that expired this run, reclassifying a
    /// silent worker as dead (multi-process backend only).
    pub deadline_timeouts: usize,
    /// Task dispatches retried after a crash-class worker failure this
    /// run (each retry waits out a capped, seeded-jitter backoff).
    pub task_retries: usize,
    /// Per-worker circuit breakers tripped open this run; a tripped slot
    /// degrades to local in-process execution for its cooldown window.
    pub circuit_trips: usize,
    /// Page records the pager appended to heap files this run (0 when
    /// `MCDBR_DATA_DIR` is off; coordinator-process activity only).
    pub pages_written: u64,
    /// Page payloads read back from disk through checksummed heap records
    /// this run — buffer-pool misses served by the disk tier.
    pub disk_reads: u64,
    /// Nanoseconds spent in those disk reads.
    pub disk_read_ns: u64,
    /// Sealed bytes spilling moved out of memory this run.
    pub spilled_bytes: u64,
    /// Worker table-store memory-tier evictions reported by this run's
    /// dispatched tasks (multi-process backend only).
    pub store_evictions: u64,
    /// The staged parameters the run used.
    pub parameters: StagedParameters,
}

/// The GibbsLooper operator.
#[derive(Debug)]
pub struct GibbsLooper {
    query: MonteCarloQuery,
    config: TailSamplingConfig,
    cache: Arc<SessionCache>,
    backend: Arc<dyn ExecBackend>,
}

impl GibbsLooper {
    /// Create a looper for an (ungrouped) Monte Carlo aggregation query,
    /// with a private [`SessionCache`] (repeated [`GibbsLooper::run`] calls
    /// still share skeletons; use [`GibbsLooper::with_cache`] to share
    /// across loopers) and the default execution backend (in-process unless
    /// `MCDBR_SHARDS` selects sharded execution).
    pub fn new(query: MonteCarloQuery, config: TailSamplingConfig) -> Self {
        GibbsLooper {
            query,
            config,
            cache: Arc::new(SessionCache::new()),
            // Routed through the dispatch crate so `MCDBR_BACKEND=process`
            // resolves to a multi-process backend; any other environment
            // defers to exec's own rules.
            backend: mcdbr_dispatch::default_backend(),
        }
    }

    /// Use a shared session cache: loopers over the same `(plan, catalog)`
    /// pair — regardless of master seed — then pay the deterministic
    /// skeleton pass once between them.
    pub fn with_cache(mut self, cache: Arc<SessionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Run every block materialization — the initial block and all §9
    /// replenishments — on an explicit execution backend.  Results are
    /// bit-identical for every backend and shard count; only the
    /// `shards_spawned` / `shard_merge_ns` counters differ.
    pub fn with_backend(mut self, backend: Arc<dyn ExecBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Run tail sampling against the catalog.
    pub fn run(&self, catalog: &Catalog) -> Result<TailSampleResult> {
        if !self.query.group_by.is_empty() {
            return Err(Error::InvalidOperation(
                "GibbsLooper handles GROUP BY as one looper per group (paper App. A fn. 4); \
                 add the group's selection predicate to the plan and run each group separately"
                    .into(),
            ));
        }
        match self.query.aggregate.func {
            AggFunc::Sum | AggFunc::Count => {}
            other => {
                return Err(Error::InvalidOperation(format!(
                    "GibbsLooper requires an incrementally-updatable aggregate (SUM or COUNT), \
                     got {other:?}"
                )))
            }
        }

        let params = self.config.staged();
        let n = params.n_per_step;
        let m = params.m;
        let p_step = params.p_per_step;
        let l = self.config.l;
        // The initial identity mapping needs at least n materialized values.
        let block = self.config.block_size.max(n);

        // ===== Run the deterministic plan skeleton at most once (paper §5)
        // — the plan-keyed session cache skips it entirely when a previous
        // run already built this plan's skeleton, under any master seed —
        // then materialize the initial stream block against the bound
        // prefix.  Replenishments reuse the same session and never re-run
        // scans, joins, or constant predicates.
        let backend_stats_before = self.backend.shard_stats();
        let mut session = self
            .cache
            .session(&self.query.plan, catalog, self.config.master_seed)?
            .with_backend(Arc::clone(&self.backend));
        let set = session.instantiate_block(catalog, 0, block)?;
        let schema = set.schema.clone();
        let mut bundles = set.bundles;
        self.validate_bundles(&schema, &bundles)?;

        if bundles.is_empty() {
            return Err(Error::InvalidOperation(
                "the query plan produced no tuples; the query-result distribution is degenerate"
                    .into(),
            ));
        }

        // ===== TS-seed table and the seed -> Gibbs-tuple index (§6, §7). =====
        let mut ts_seeds: BTreeMap<SeedId, TsSeed> = BTreeMap::new();
        let mut seed_to_bundles: BTreeMap<SeedId, Vec<usize>> = BTreeMap::new();
        for (idx, bundle) in bundles.iter().enumerate() {
            for seed in bundle.seeds() {
                ts_seeds
                    .entry(seed)
                    .or_insert_with(|| TsSeed::new(seed, n, block as u64));
                seed_to_bundles.entry(seed).or_default().push(idx);
            }
        }
        if ts_seeds.is_empty() {
            return Err(Error::InvalidOperation(
                "the query references no random attributes; use the plain MCDB engine instead"
                    .into(),
            ));
        }

        // ===== Initial per-version aggregates (App. A.1). =====
        let mut num_versions = n;
        let mut version_aggregates: Vec<f64> = (0..num_versions)
            .map(|v| self.full_aggregate(&schema, &bundles, &ts_seeds, v))
            .collect::<Result<_>>()?;

        let mut cutoffs = Vec::with_capacity(m);
        let mut gibbs = GibbsStats::default();
        let mut replenishments = 0usize;

        // ===== Bootstrapping steps (Algorithm 3). =====
        for step in 0..m {
            // The (p·|S|)-largest aggregate becomes the cutoff.
            let mut sorted: Vec<f64> = version_aggregates.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let elite_count =
                ((p_step * num_versions as f64).round() as usize).clamp(1, num_versions);
            let cutoff = sorted[elite_count - 1];
            cutoffs.push(cutoff);

            // Elite versions (ties broken by version index, taking exactly
            // elite_count of them).
            let mut order: Vec<usize> = (0..num_versions).collect();
            order.sort_by(|&a, &b| {
                version_aggregates[b]
                    .partial_cmp(&version_aggregates[a])
                    .unwrap()
            });
            let elites: Vec<usize> = order[..elite_count].to_vec();

            // CLONE up to the next stage's size by copying TS-seed assignment
            // columns (App. A.2 / Fig. 4(b)).
            let next_size = if step + 1 == m { l } else { n };
            let sources: Vec<usize> = (0..next_size).map(|i| elites[i % elites.len()]).collect();
            for ts in ts_seeds.values_mut() {
                ts.reassign_from(&sources);
            }
            version_aggregates = sources.iter().map(|&s| version_aggregates[s]).collect();
            num_versions = next_size;

            // Gibbs perturbation, seed-major (§7), k sweeps (k = 1 suffices).
            for _ in 0..self.config.k {
                let seeds: Vec<SeedId> = ts_seeds.keys().copied().collect();
                for seed in seeds {
                    let affected = seed_to_bundles.get(&seed).cloned().unwrap_or_default();
                    #[allow(clippy::needless_range_loop)]
                    for v in 0..num_versions {
                        let old_contribution =
                            self.contribution(&schema, &bundles, &ts_seeds, &affected, v, None)?;
                        let mut accepted = false;
                        let mut candidates_tried = 0u64;
                        loop {
                            if candidates_tried >= self.config.max_candidates {
                                gibbs.exhausted += 1;
                                break;
                            }
                            let pos = ts_seeds[&seed].next_unused();
                            // Replenish when the block is exhausted (§9):
                            // stream values only, against the cached prefix.
                            if pos >= ts_seeds[&seed].high {
                                self.replenish(
                                    catalog,
                                    &mut session,
                                    &mut bundles,
                                    &mut ts_seeds,
                                    block,
                                )?;
                                replenishments += 1;
                            }
                            let new_contribution = self.contribution(
                                &schema,
                                &bundles,
                                &ts_seeds,
                                &affected,
                                v,
                                Some((seed, pos)),
                            )?;
                            let new_aggregate =
                                version_aggregates[v] - old_contribution + new_contribution;
                            candidates_tried += 1;
                            if new_aggregate >= cutoff {
                                let ts = ts_seeds.get_mut(&seed).expect("seed present");
                                ts.assign(v, pos);
                                version_aggregates[v] = new_aggregate;
                                gibbs.accepted += 1;
                                accepted = true;
                                break;
                            } else {
                                // The candidate is consumed even though it was
                                // rejected (Fig. 3: the rejected 3.24 / 3.68
                                // are never revisited).
                                let ts = ts_seeds.get_mut(&seed).expect("seed present");
                                ts.max_used = ts.max_used.max(pos);
                                gibbs.rejected += 1;
                            }
                        }
                        let _ = accepted;
                    }
                }
            }
        }

        let stream_positions_consumed: u64 = ts_seeds.values().map(|ts| ts.max_used + 1).sum();
        let backend_stats = self.backend.shard_stats().since(backend_stats_before);

        Ok(TailSampleResult {
            quantile_estimate: *cutoffs.last().unwrap_or(&f64::NAN),
            tail_samples: version_aggregates,
            cutoffs,
            gibbs,
            plan_executions: session.plan_executions(),
            blocks_materialized: session.blocks_materialized(),
            skeleton_hits: usize::from(session.skeleton_hit()),
            skeleton_misses: usize::from(!session.skeleton_hit()),
            replenishments,
            bytes_materialized: session.bytes_materialized(),
            buffer_reuses: session.buffer_reuses(),
            stream_positions_consumed,
            shards_spawned: backend_stats.shards_spawned,
            shard_merge_ns: backend_stats.shard_merge_ns,
            cross_shard_regens: backend_stats.cross_shard_regens,
            workers_spawned: backend_stats.workers_spawned,
            tasks_dispatched: backend_stats.tasks_dispatched,
            wire_bytes_sent: backend_stats.wire_bytes_sent,
            wire_bytes_received: backend_stats.wire_bytes_received,
            worker_respawns: backend_stats.worker_respawns,
            deadline_timeouts: backend_stats.deadline_timeouts,
            task_retries: backend_stats.task_retries,
            circuit_trips: backend_stats.circuit_trips,
            pages_written: backend_stats.pages_written,
            disk_reads: backend_stats.disk_reads,
            disk_read_ns: backend_stats.disk_read_ns,
            spilled_bytes: backend_stats.spilled_bytes,
            store_evictions: backend_stats.store_evictions,
            parameters: params,
        })
    }

    /// Reject plans whose bundles lost lineage (Computed columns referenced
    /// by the aggregate/predicate) or pushed random predicates below the
    /// looper (per-repetition isPres has repetition semantics, not
    /// DB-version semantics).
    fn validate_bundles(&self, schema: &Schema, bundles: &[TupleBundle]) -> Result<()> {
        let mut referenced: Vec<&str> = self.query.aggregate.expr.referenced_columns();
        if let Some(pred) = &self.query.final_predicate {
            for c in pred.referenced_columns() {
                if !referenced.contains(&c) {
                    referenced.push(c);
                }
            }
        }
        let indices: Vec<usize> = referenced
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        for bundle in bundles {
            if bundle.is_pres.is_some() {
                return Err(Error::InvalidOperation(
                    "plans feeding GibbsLooper must not filter on random attributes below the \
                     looper; pull such predicates into the final predicate (paper App. A, input 3)"
                        .into(),
                ));
            }
            for &i in &indices {
                if matches!(bundle.values[i], BundleValue::Computed(_)) {
                    return Err(Error::InvalidOperation(format!(
                        "column {} lost its stream lineage (it was computed by a projection); \
                         keep arithmetic over random attributes inside the aggregate expression",
                        schema.field(i).name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Materialize the row of `bundle` as seen by DB version `v` into a
    /// reusable scratch buffer, optionally overriding one seed's assignment
    /// with a candidate position.  The Gibbs inner loop calls this once per
    /// `(bundle, version, candidate)` — a per-call heap allocation here is
    /// the hottest allocation in the whole looper, so the buffer is owned by
    /// the caller and recycled across bundles.
    fn version_row_into(
        bundle: &TupleBundle,
        ts_seeds: &BTreeMap<SeedId, TsSeed>,
        v: usize,
        override_pos: Option<(SeedId, u64)>,
        row: &mut Vec<Value>,
    ) {
        row.clear();
        row.extend(bundle.values.iter().map(|bv| match bv {
            BundleValue::Const(value) => value.clone(),
            BundleValue::Computed(values) => values.value_at(v),
            BundleValue::Random {
                seed,
                base_pos,
                values,
                ..
            } => {
                let assigned = match override_pos {
                    Some((s, pos)) if s == *seed => pos,
                    _ => ts_seeds[seed].assigned(v),
                };
                values.value_at((assigned - base_pos) as usize)
            }
        }));
    }

    /// The contribution of the given bundles to DB version `v`'s aggregate.
    fn contribution(
        &self,
        schema: &Schema,
        bundles: &[TupleBundle],
        ts_seeds: &BTreeMap<SeedId, TsSeed>,
        indices: &[usize],
        v: usize,
        override_pos: Option<(SeedId, u64)>,
    ) -> Result<f64> {
        let mut total = 0.0;
        let mut row: Vec<Value> = Vec::with_capacity(schema.len());
        for &idx in indices {
            Self::version_row_into(&bundles[idx], ts_seeds, v, override_pos, &mut row);
            if let Some(pred) = &self.query.final_predicate {
                if !pred.eval_bool(schema, &row)? {
                    continue;
                }
            }
            total += match self.query.aggregate.func {
                AggFunc::Sum => self.query.aggregate.expr.eval_f64(schema, &row)?,
                AggFunc::Count => 1.0,
                _ => unreachable!("validated in run()"),
            };
        }
        Ok(total)
    }

    /// The full aggregate of DB version `v` (used only for initialization;
    /// perturbation uses incremental deltas).
    fn full_aggregate(
        &self,
        schema: &Schema,
        bundles: &[TupleBundle],
        ts_seeds: &BTreeMap<SeedId, TsSeed>,
        v: usize,
    ) -> Result<f64> {
        let all: Vec<usize> = (0..bundles.len()).collect();
        self.contribution(schema, bundles, ts_seeds, &all, v, None)
    }

    /// Materialize the next block of every stream (paper §9) against the
    /// session's cached deterministic prefix, appending the new values to the
    /// existing Gibbs tuples.  No scan, join, or constant predicate re-runs.
    fn replenish(
        &self,
        catalog: &Catalog,
        session: &mut ExecSession,
        bundles: &mut [TupleBundle],
        ts_seeds: &mut BTreeMap<SeedId, TsSeed>,
        block: usize,
    ) -> Result<()> {
        // All streams share the same materialized range in this
        // implementation, so extend from the common high-water mark.
        let base = ts_seeds.values().next().map(|ts| ts.high).unwrap_or(0);
        let fresh = session.instantiate_block(catalog, base, block)?;
        if fresh.bundles.len() != bundles.len() {
            return Err(Error::InvalidOperation(
                "replenishment produced a different number of Gibbs tuples; the plan's \
                 deterministic part must be stable across runs"
                    .into(),
            ));
        }
        for (existing, new) in bundles.iter_mut().zip(fresh.bundles) {
            for (ev, nv) in existing.values.iter_mut().zip(new.values) {
                if let (
                    BundleValue::Random {
                        values: evs,
                        seed: es,
                        ..
                    },
                    BundleValue::Random {
                        values: nvs,
                        seed: ns,
                        ..
                    },
                ) = (ev, nv)
                {
                    debug_assert_eq!(*es, ns, "stream identity must be stable across runs");
                    // Appends the fresh block as another shared column
                    // segment — replenishment never recopies earlier blocks.
                    evs.append(nvs);
                }
            }
        }
        for ts in ts_seeds.values_mut() {
            ts.extend_materialized(block as u64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_exec::plan::scalar_random_table;
    use mcdbr_exec::{AggregateSpec, Expr, PlanNode};
    use mcdbr_storage::{Field, Schema as StorageSchema, TableBuilder};
    use mcdbr_vg::math::std_normal_quantile;
    use mcdbr_vg::NormalVg;
    use std::sync::Arc;

    /// A catalog with `r` customers whose losses are Normal(mean_i, 1).
    fn catalog(means: &[f64]) -> Catalog {
        let mut b = TableBuilder::new(StorageSchema::new(vec![
            Field::int64("cid"),
            Field::float64("m"),
        ]));
        for (i, &m) in means.iter().enumerate() {
            b = b.row([Value::Int64(i as i64), Value::Float64(m)]);
        }
        let mut catalog = Catalog::new();
        catalog.register("means", b.build().unwrap()).unwrap();
        catalog
    }

    fn losses_query() -> MonteCarloQuery {
        let plan = PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ));
        MonteCarloQuery::new(plan, AggregateSpec::sum(Expr::col("val"), "totalLoss"))
    }

    #[test]
    fn paper_section_4_2_configuration_runs() {
        // §4.2: three customers with means 3, 4, 5; p = 1/32, n = 4, m = 5.
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        let config = TailSamplingConfig::new(1.0 / 32.0, 4, 20)
            .with_m(5)
            .with_block_size(64)
            .with_master_seed(7);
        let looper = GibbsLooper::new(losses_query(), config);
        let result = looper.run(&catalog).unwrap();
        assert_eq!(result.tail_samples.len(), 4);
        assert_eq!(result.cutoffs.len(), 5);
        // Every final sample lies at or above the final cutoff, and cutoffs
        // are non-decreasing (the walk out to the tail).
        for w in result.cutoffs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "cutoffs {:?}", result.cutoffs);
        }
        for &s in &result.tail_samples {
            assert!(s >= result.quantile_estimate - 1e-9);
        }
        // p^(1/m) = 0.5 per step.
        assert!((result.parameters.p_per_step - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_estimate_matches_the_analytic_normal_sum() {
        // SUM of 30 Normal(i/10, 1) losses is Normal(μ, 30); check the
        // estimated 0.99-quantile against the closed form, averaged over a
        // few runs.
        let means: Vec<f64> = (0..30).map(|i| i as f64 / 10.0).collect();
        let mu: f64 = means.iter().sum();
        let sd = 30f64.sqrt();
        let truth = mu + sd * std_normal_quantile(0.99);
        let catalog = catalog(&means);
        let runs = 6;
        let mut sum_est = 0.0;
        for run in 0..runs {
            let config = TailSamplingConfig::new(0.01, 30, 600)
                .with_m(2)
                .with_block_size(700)
                .with_master_seed(1000 + run);
            let result = GibbsLooper::new(losses_query(), config)
                .run(&catalog)
                .unwrap();
            sum_est += result.quantile_estimate;
        }
        let mean_est = sum_est / runs as f64;
        assert!(
            (mean_est - truth).abs() < 0.12 * sd,
            "estimate {mean_est} vs analytic {truth} (sd {sd})"
        );
    }

    #[test]
    fn tail_samples_exceed_the_true_quantile_most_of_the_time() {
        let means = vec![1.0; 20];
        let catalog = catalog(&means);
        let truth = 20.0 + 20f64.sqrt() * std_normal_quantile(0.95);
        let config = TailSamplingConfig::new(0.05, 50, 400)
            .with_m(2)
            .with_block_size(400)
            .with_master_seed(3);
        let result = GibbsLooper::new(losses_query(), config)
            .run(&catalog)
            .unwrap();
        let above = result.tail_samples.iter().filter(|&&x| x >= truth).count();
        assert!(
            above as f64 >= 0.5 * result.tail_samples.len() as f64,
            "only {above}/{} samples beyond the true quantile {truth}",
            result.tail_samples.len()
        );
    }

    #[test]
    fn final_predicate_is_respected() {
        // Only losses above 0 count; with means well above zero this barely
        // changes the result, but the plumbing must not error and the result
        // must stay above the cutoff.
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        let query = losses_query().with_final_predicate(Expr::col("val").gt(Expr::lit(0.0)));
        let config = TailSamplingConfig::new(0.1, 8, 60)
            .with_m(2)
            .with_block_size(64);
        let result = GibbsLooper::new(query, config).run(&catalog).unwrap();
        assert_eq!(result.tail_samples.len(), 8);
        assert!(result.gibbs.accepted > 0);
    }

    #[test]
    fn small_blocks_force_replenishment_runs() {
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        // A tiny block relative to the sampling effort guarantees streams run
        // dry and replenishment blocks are materialized (§9) — but the
        // deterministic plan work still happens exactly once, at session
        // prepare time.
        let config = TailSamplingConfig::new(0.05, 10, 200)
            .with_m(3)
            .with_block_size(40)
            .with_master_seed(11);
        let result = GibbsLooper::new(losses_query(), config)
            .run(&catalog)
            .unwrap();
        assert!(
            result.replenishments > 0,
            "expected at least one replenishment"
        );
        assert_eq!(result.blocks_materialized, 1 + result.replenishments);
        assert_eq!(
            result.plan_executions, 1,
            "replenishment must not re-run the plan"
        );
        // Replenishment rounds recycle the session's pooled columnar
        // buffers: 3 streams per block, every block past the first reuses
        // all three.  (A lower bound, not an equality: under a sharded
        // default backend a shard task that finishes early releases its
        // buffer in time for a neighbor task of the *same* block to reuse
        // it, adding intra-block reuses on top.)  Under a multi-process
        // default backend the buffers live in the *worker* processes, so
        // the coordinator-side pool counters legitimately stay flat —
        // the wire counters carry the evidence instead.
        if mcdbr_dispatch::default_backend().name() == "process" {
            assert!(
                result.tasks_dispatched >= result.blocks_materialized,
                "every block must dispatch at least one task: {result:?}"
            );
        } else {
            assert!(
                result.buffer_reuses >= (3 * result.replenishments) as u64,
                "each replenishment must reuse the warm buffers ({} reuses, {} replenishments)",
                result.buffer_reuses,
                result.replenishments
            );
            assert!(result.bytes_materialized > 0);
        }
        // Larger blocks need fewer block materializations, and still exactly
        // one plan execution.
        let config_big = TailSamplingConfig::new(0.05, 10, 200)
            .with_m(3)
            .with_block_size(4000)
            .with_master_seed(11);
        let result_big = GibbsLooper::new(losses_query(), config_big)
            .run(&catalog)
            .unwrap();
        assert!(result_big.blocks_materialized < result.blocks_materialized);
        assert_eq!(result_big.plan_executions, 1);
    }

    #[test]
    fn replenishment_matches_a_single_long_run() {
        // The §9 guarantee, end to end: tail sampling with tiny blocks (many
        // replenishments) and with one huge block (none) must agree exactly,
        // because replenishment appends precisely the stream values a longer
        // initial materialization would have contained.
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        let mk = |block| {
            TailSamplingConfig::new(0.05, 10, 200)
                .with_m(3)
                .with_block_size(block)
                .with_master_seed(11)
        };
        let small = GibbsLooper::new(losses_query(), mk(40))
            .run(&catalog)
            .unwrap();
        let big = GibbsLooper::new(losses_query(), mk(4000))
            .run(&catalog)
            .unwrap();
        assert!(small.replenishments > 0 && big.replenishments == 0);
        assert_eq!(small.tail_samples, big.tail_samples);
        assert_eq!(small.cutoffs, big.cutoffs);
    }

    #[test]
    fn sharded_backend_runs_are_bit_identical_and_counted() {
        // The whole point of the backend seam: a tail-sampling run —
        // including its replenishments — must not change by a single bit
        // when its blocks are materialized by shards instead of the
        // in-process pool, for any shard count.
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        let mk = || {
            TailSamplingConfig::new(0.05, 10, 200)
                .with_m(3)
                .with_block_size(40)
                .with_master_seed(11)
        };
        let in_process = GibbsLooper::new(losses_query(), mk())
            .with_backend(Arc::new(mcdbr_exec::InProcessBackend::new()))
            .run(&catalog)
            .unwrap();
        assert_eq!(in_process.shards_spawned, 0);
        assert_eq!(in_process.shard_merge_ns, 0);
        assert!(in_process.replenishments > 0, "exercise replenishment too");
        for shards in [1usize, 2, 3, 7] {
            let sharded = GibbsLooper::new(losses_query(), mk())
                .with_backend(Arc::new(mcdbr_exec::ShardedBackend::new(shards)))
                .run(&catalog)
                .unwrap();
            assert_eq!(sharded.tail_samples, in_process.tail_samples);
            assert_eq!(sharded.cutoffs, in_process.cutoffs);
            assert_eq!(sharded.replenishments, in_process.replenishments);
            // 3 streams: every block fans out into min(shards, 3) tasks.
            assert_eq!(
                sharded.shards_spawned,
                sharded.blocks_materialized * shards.min(3)
            );
        }
    }

    #[test]
    fn grouped_queries_and_bad_aggregates_are_rejected() {
        let catalog = catalog(&[3.0, 4.0]);
        let grouped = losses_query().with_group_by(vec!["cid".to_string()]);
        let config = TailSamplingConfig::new(0.1, 4, 40)
            .with_m(2)
            .with_block_size(64);
        assert!(GibbsLooper::new(grouped, config.clone())
            .run(&catalog)
            .is_err());

        let mut avg_query = losses_query();
        avg_query.aggregate = AggregateSpec::avg(Expr::col("val"), "avgLoss");
        assert!(GibbsLooper::new(avg_query, config).run(&catalog).is_err());
    }

    #[test]
    fn plans_that_lose_lineage_are_rejected() {
        let catalog = catalog(&[3.0, 4.0]);
        // Projecting val+1 produces a Computed column; aggregating it must fail.
        let mut query = losses_query();
        query.plan = query.plan.project(vec![
            ("val", Expr::col("val").add(Expr::lit(1.0))),
            ("cid", Expr::col("cid")),
        ]);
        let config = TailSamplingConfig::new(0.1, 4, 40)
            .with_m(2)
            .with_block_size(64);
        let err = GibbsLooper::new(query, config.clone()).run(&catalog);
        assert!(err.is_err());

        // Filtering on the random attribute below the looper must fail too.
        let mut query = losses_query();
        query.plan = query.plan.filter(Expr::col("val").gt(Expr::lit(2.0)));
        assert!(GibbsLooper::new(query, config).run(&catalog).is_err());
    }

    #[test]
    fn session_cache_skips_the_skeleton_on_repeated_runs() {
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        let config = TailSamplingConfig::new(0.1, 6, 60)
            .with_m(2)
            .with_block_size(128)
            .with_master_seed(5);
        let looper = GibbsLooper::new(losses_query(), config.clone());
        let first = looper.run(&catalog).unwrap();
        assert_eq!((first.skeleton_hits, first.skeleton_misses), (0, 1));
        assert_eq!(first.plan_executions, 1);
        // A second run of the same looper reuses the cached skeleton —
        // phase 1 never runs — and is bit-identical.
        let second = looper.run(&catalog).unwrap();
        assert_eq!((second.skeleton_hits, second.skeleton_misses), (1, 0));
        assert_eq!(second.plan_executions, 0);
        assert_eq!(first.tail_samples, second.tail_samples);
        assert_eq!(first.cutoffs, second.cutoffs);

        // A shared cache serves a different looper under a *fresh master
        // seed*: only stream seeds are re-derived, and the result matches a
        // cold run at that seed exactly.
        let shared = Arc::new(SessionCache::new());
        let warm = GibbsLooper::new(losses_query(), config.clone().with_master_seed(7))
            .with_cache(Arc::clone(&shared));
        let _ = warm.run(&catalog).unwrap();
        let reused = GibbsLooper::new(losses_query(), config.with_master_seed(9))
            .with_cache(Arc::clone(&shared))
            .run(&catalog)
            .unwrap();
        assert_eq!((reused.skeleton_hits, reused.skeleton_misses), (1, 0));
        let cold = GibbsLooper::new(
            losses_query(),
            TailSamplingConfig::new(0.1, 6, 60)
                .with_m(2)
                .with_block_size(128)
                .with_master_seed(9),
        )
        .run(&catalog)
        .unwrap();
        assert_eq!(reused.tail_samples, cold.tail_samples);
        assert_eq!(reused.cutoffs, cold.cutoffs);
    }

    #[test]
    fn runs_are_reproducible_per_master_seed() {
        let catalog = catalog(&[3.0, 4.0, 5.0]);
        let mk = |seed| {
            TailSamplingConfig::new(0.1, 6, 60)
                .with_m(2)
                .with_block_size(128)
                .with_master_seed(seed)
        };
        let a = GibbsLooper::new(losses_query(), mk(5))
            .run(&catalog)
            .unwrap();
        let b = GibbsLooper::new(losses_query(), mk(5))
            .run(&catalog)
            .unwrap();
        let c = GibbsLooper::new(losses_query(), mk(6))
            .run(&catalog)
            .unwrap();
        assert_eq!(a.tail_samples, b.tail_samples);
        assert_eq!(a.cutoffs, b.cutoffs);
        assert_ne!(a.tail_samples, c.tail_samples);
    }

    #[test]
    fn multi_table_join_query_with_pulled_up_predicate() {
        // A small version of the §5 salary-inversion pattern: an uncertain
        // salary table joined to a deterministic supervision table, with the
        // sal2 > sal1 predicate pulled up into the looper.
        let mut catalog = Catalog::new();
        let emp_params = TableBuilder::new(StorageSchema::new(vec![
            Field::utf8("eid"),
            Field::float64("msal"),
        ]))
        .row([Value::str("Joe"), Value::Float64(26.0)])
        .row([Value::str("Sue"), Value::Float64(24.0)])
        .row([Value::str("Ann"), Value::Float64(43.0)])
        .row([Value::str("Jim"), Value::Float64(77.0)])
        .build()
        .unwrap();
        let sup = TableBuilder::new(StorageSchema::new(vec![
            Field::utf8("boss"),
            Field::utf8("peon"),
        ]))
        .row([Value::str("Sue"), Value::str("Joe")])
        .row([Value::str("Jim"), Value::str("Sue")])
        .row([Value::str("Jim"), Value::str("Ann")])
        .build()
        .unwrap();
        catalog.register("emp_params", emp_params).unwrap();
        catalog.register("sup", sup).unwrap();

        let emp = |tag| {
            PlanNode::random_table(scalar_random_table(
                "emp",
                "emp_params",
                Arc::new(NormalVg),
                vec![Expr::col("msal"), Expr::lit(4.0)],
                &["eid"],
                "sal",
                tag,
            ))
        };
        // sup ⋈ emp1 (boss) ⋈ emp2 (peon).  Both emp instances share the same
        // streams (tag 1): a self-join reuses the same uncertain table.  Join
        // keys name the right input's own columns; the joined schema renames
        // the second emp's columns to eid_1 / sal_1.
        let plan = PlanNode::scan("sup")
            .join(emp(1), vec![("boss", "eid")])
            .join(emp(1), vec![("peon", "eid")]);
        let aggregate = AggregateSpec::sum(Expr::col("sal_1").sub(Expr::col("sal")), "inversion");
        let query = MonteCarloQuery::new(plan, aggregate)
            .with_final_predicate(Expr::col("sal_1").gt(Expr::col("sal")));
        let config = TailSamplingConfig::new(0.05, 12, 240)
            .with_m(2)
            .with_block_size(300)
            .with_master_seed(21);
        let result = GibbsLooper::new(query, config).run(&catalog).unwrap();
        assert_eq!(result.tail_samples.len(), 12);
        // Salary inversions are non-negative by construction of the predicate.
        assert!(result.tail_samples.iter().all(|&x| x >= -1e-9));
        // The tail of this distribution is clearly positive.
        assert!(result.quantile_estimate > 0.0);
    }
}
