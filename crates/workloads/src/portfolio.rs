//! A financial-portfolio workload: future asset values via Euler-discretized
//! geometric Brownian motion (the "future values of financial assets ...
//! Euler approximations to stochastic differential equations" scenario of the
//! paper's introduction).

use std::sync::Arc;

use mcdbr_exec::plan::{OutputColumn, RandomTableSpec};
use mcdbr_exec::{AggregateSpec, Expr, PlanNode};
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_prng::Pcg64;
use mcdbr_storage::{Catalog, Field, Result, Schema, TableBuilder, Value};
use mcdbr_vg::{Distribution, GbmTerminalVg};

/// Build a portfolio catalog: `positions(aid, s0, mu, sigma, horizon, qty)`
/// describing `n_assets` holdings with heterogeneous volatilities.
pub fn portfolio_catalog(n_assets: usize, horizon_years: f64, seed: u64) -> Result<Catalog> {
    let mut gen = Pcg64::new(seed);
    let price = Distribution::Uniform {
        lo: 20.0,
        hi: 200.0,
    };
    let drift = Distribution::Uniform {
        lo: -0.02,
        hi: 0.08,
    };
    let vol = Distribution::Uniform { lo: 0.1, hi: 0.45 };
    let qty = Distribution::Uniform {
        lo: 10.0,
        hi: 100.0,
    };
    let mut builder = TableBuilder::new(Schema::new(vec![
        Field::int64("aid"),
        Field::float64("s0"),
        Field::float64("mu"),
        Field::float64("sigma"),
        Field::float64("horizon"),
        Field::float64("qty"),
    ]));
    for aid in 0..n_assets {
        builder = builder.row([
            Value::Int64(aid as i64),
            Value::Float64(price.sample(&mut gen)),
            Value::Float64(drift.sample(&mut gen)),
            Value::Float64(vol.sample(&mut gen)),
            Value::Float64(horizon_years),
            Value::Float64(qty.sample(&mut gen).round()),
        ]);
    }
    let mut catalog = Catalog::new();
    catalog.register("positions", builder.build()?)?;
    Ok(catalog)
}

/// The portfolio-loss query: the uncertain table `future(aid, s0, qty, value)`
/// holds the simulated future price of each asset, and the query aggregates
/// `SUM(qty * (s0 - value))` — the total mark-to-market loss over the
/// horizon.  Its upper tail is the portfolio's loss distribution tail, the
/// natural target for `DOMAIN totalLoss >= QUANTILE(1-p)`.
pub fn portfolio_loss_query(euler_steps: usize) -> MonteCarloQuery {
    let spec = RandomTableSpec {
        name: "future".into(),
        param_table: "positions".into(),
        vg: Arc::new(GbmTerminalVg::new(euler_steps)),
        vg_params: vec![
            Expr::col("s0"),
            Expr::col("mu"),
            Expr::col("sigma"),
            Expr::col("horizon"),
        ],
        columns: vec![
            OutputColumn::Param {
                source: "aid".into(),
                as_name: "aid".into(),
            },
            OutputColumn::Param {
                source: "s0".into(),
                as_name: "s0".into(),
            },
            OutputColumn::Param {
                source: "qty".into(),
                as_name: "qty".into(),
            },
            OutputColumn::Vg {
                vg_col: 0,
                as_name: "value".into(),
            },
        ],
        table_tag: 20,
    };
    let plan = PlanNode::random_table(spec);
    let loss = Expr::col("qty").mul(Expr::col("s0").sub(Expr::col("value")));
    MonteCarloQuery::new(plan, AggregateSpec::sum(loss, "totalLoss"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_mcdb::McdbEngine;

    #[test]
    fn catalog_has_the_requested_positions() {
        let catalog = portfolio_catalog(25, 1.0, 3).unwrap();
        let positions = catalog.get("positions").unwrap();
        assert_eq!(positions.len(), 25);
        assert!(positions
            .column_f64("sigma")
            .unwrap()
            .iter()
            .all(|&s| s > 0.0));
        assert!(positions.column_f64("s0").unwrap().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn loss_distribution_is_centered_below_zero_for_positive_drift() {
        // With mostly positive drift the expected loss is negative (a gain),
        // but the upper tail (large losses) still exists because of volatility.
        let catalog = portfolio_catalog(15, 1.0, 9).unwrap();
        let query = portfolio_loss_query(16);
        let mut engine = McdbEngine::new();
        let results = engine.run(&query, &catalog, 400, 17).unwrap();
        let dist = &results[0].1;
        assert_eq!(dist.len(), 400);
        assert!(dist.mean() < 0.0, "mean loss = {}", dist.mean());
        assert!(
            dist.max() > 0.0,
            "the loss tail should reach positive territory"
        );
    }

    #[test]
    fn portfolio_generation_is_reproducible() {
        let a = portfolio_catalog(10, 0.5, 1).unwrap();
        let b = portfolio_catalog(10, 0.5, 1).unwrap();
        assert_eq!(a.get("positions").unwrap(), b.get("positions").unwrap());
    }
}
