//! The Appendix D TPC-H-like workload.
//!
//! The paper's benchmark query is
//!
//! ```sql
//! SELECT SUM(val) AS totalLoss
//! FROM random_ord, lineitem
//! WHERE o_orderkey = l_orderkey AND (o_yr = '1994' OR o_yr = '1995')
//! ```
//!
//! where `random_ord` attaches a `Normal(o_mean, o_var)` loss to each order.
//! The accuracy experiment (Figure 5) modifies the generator: 100 000 orders
//! whose means and variances are themselves drawn from inverse-gamma
//! distributions (shape 3, scale 1 and shape 3, scale 0.5), and one million
//! lineitem rows that join some order with a *linearly decaying* probability
//! across order keys — order `i` is chosen with probability
//! `2·(10⁻⁵ − 10⁻¹⁰) · (1 − i/(10⁵−1)) + 10⁻¹⁰` (so early orders get roughly
//! twice the average fanout and the last order almost none).
//!
//! [`TpchWorkload`] reproduces exactly that structure at configurable scale
//! and, because the per-order join fanout is known at generation time, also
//! carries the [`NormalSumOracle`] giving the true query-result distribution
//! used to draw Figure 5's analytic curves.

use std::sync::Arc;

use mcdbr_exec::plan::{OutputColumn, RandomTableSpec};
use mcdbr_exec::{AggregateSpec, Expr, PlanNode};
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_prng::Pcg64;
use mcdbr_risk::NormalSumOracle;
use mcdbr_storage::{Catalog, Field, Result, Schema, TableBuilder, Value};
use mcdbr_vg::{Distribution, NormalVg};

/// Configuration of the TPC-H-like generator.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Number of orders (the paper uses 100 000).
    pub num_orders: usize,
    /// Number of lineitem rows that join some order (the paper uses 1 000 000).
    pub num_lineitems: usize,
    /// Shape/scale of the inverse-gamma prior on per-order means (paper: 3, 1).
    pub mean_prior: (f64, f64),
    /// Shape/scale of the inverse-gamma prior on per-order variances (paper: 3, 0.5).
    pub var_prior: (f64, f64),
    /// Master seed for data generation.
    pub seed: u64,
}

impl TpchConfig {
    /// The paper's full-scale configuration (Appendix D accuracy experiment).
    pub fn paper_scale() -> Self {
        TpchConfig {
            num_orders: 100_000,
            num_lineitems: 1_000_000,
            mean_prior: (3.0, 1.0),
            var_prior: (3.0, 0.5),
            seed: 0x7c9,
        }
    }

    /// A laptop-scale configuration preserving the same structure (the ratio
    /// of lineitems to orders, the skewed fanout, and the hyper-priors).
    pub fn laptop_scale() -> Self {
        TpchConfig {
            num_orders: 2_000,
            num_lineitems: 20_000,
            mean_prior: (3.0, 1.0),
            var_prior: (3.0, 0.5),
            seed: 0x7c9,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn test_scale() -> Self {
        TpchConfig {
            num_orders: 100,
            num_lineitems: 800,
            mean_prior: (3.0, 1.0),
            var_prior: (3.0, 0.5),
            seed: 0x7c9,
        }
    }
}

/// The generated workload: catalog, per-order join fanouts, and the analytic
/// oracle for the query-result distribution.
#[derive(Debug, Clone)]
pub struct TpchWorkload {
    /// Catalog containing `orders(o_orderkey, o_mean, o_var)` and
    /// `lineitem(l_orderkey)`.
    pub catalog: Catalog,
    /// Join fanout of each order (how many lineitem rows reference it).
    pub fanouts: Vec<u64>,
    /// The analytic query-result distribution (paper's validation query).
    pub oracle: NormalSumOracle,
    /// The configuration used.
    pub config: TpchConfig,
}

impl TpchWorkload {
    /// Generate the workload.
    pub fn generate(config: TpchConfig) -> Result<Self> {
        assert!(config.num_orders >= 2, "need at least two orders");
        let mut gen = Pcg64::new(config.seed);
        let mean_prior = Distribution::InverseGamma {
            shape: config.mean_prior.0,
            scale: config.mean_prior.1,
        };
        let var_prior = Distribution::InverseGamma {
            shape: config.var_prior.0,
            scale: config.var_prior.1,
        };

        // orders(o_orderkey, o_mean, o_var): hyper-priors on the per-order
        // normal parameters.
        let mut means = Vec::with_capacity(config.num_orders);
        let mut vars = Vec::with_capacity(config.num_orders);
        let mut orders = TableBuilder::new(Schema::new(vec![
            Field::int64("o_orderkey"),
            Field::float64("o_mean"),
            Field::float64("o_var"),
        ]));
        for key in 0..config.num_orders {
            let m = mean_prior.sample(&mut gen);
            let v = var_prior.sample(&mut gen);
            means.push(m);
            vars.push(v);
            orders = orders.row([
                Value::Int64(key as i64),
                Value::Float64(m),
                Value::Float64(v),
            ]);
        }

        // lineitem(l_orderkey): each row picks an order with a linearly
        // decaying probability across order keys (the paper's skew).
        let n = config.num_orders as f64;
        let weights: Vec<f64> = (0..config.num_orders).map(|i| n - i as f64).collect();
        let total_weight: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(config.num_orders);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total_weight;
            cumulative.push(acc);
        }
        let mut fanouts = vec![0u64; config.num_orders];
        let mut lineitem = TableBuilder::new(Schema::new(vec![Field::int64("l_orderkey")]));
        for _ in 0..config.num_lineitems {
            let u = gen.next_f64();
            let key = cumulative
                .partition_point(|&c| c < u)
                .min(config.num_orders - 1);
            fanouts[key] += 1;
            lineitem = lineitem.row([Value::Int64(key as i64)]);
        }

        // The analytic oracle, exactly as the paper computes it:
        // mean = Σ g_i μ_i, variance = Σ g_i² σ_i².
        let groups: Vec<(u64, f64, f64)> = fanouts
            .iter()
            .zip(&means)
            .zip(&vars)
            .map(|((&g, &m), &v)| (g, m, v))
            .collect();
        let oracle = NormalSumOracle::from_join_groups(&groups)?;

        let mut catalog = Catalog::new();
        catalog.register("orders", orders.build()?)?;
        catalog.register("lineitem", lineitem.build()?)?;
        Ok(TpchWorkload {
            catalog,
            fanouts,
            oracle,
            config,
        })
    }

    /// The uncertain-table specification for `random_ord`: one
    /// `Normal(o_mean, o_var)` loss per order.
    pub fn random_ord_spec(&self) -> RandomTableSpec {
        RandomTableSpec {
            name: "random_ord".into(),
            param_table: "orders".into(),
            vg: Arc::new(NormalVg),
            vg_params: vec![Expr::col("o_mean"), Expr::col("o_var")],
            columns: vec![
                OutputColumn::Param {
                    source: "o_orderkey".into(),
                    as_name: "o_orderkey".into(),
                },
                OutputColumn::Vg {
                    vg_col: 0,
                    as_name: "val".into(),
                },
            ],
            table_tag: 10,
        }
    }

    /// The Appendix D benchmark query:
    /// `SELECT SUM(val) FROM random_ord ⋈ lineitem ON o_orderkey = l_orderkey`.
    pub fn total_loss_query(&self) -> MonteCarloQuery {
        let plan = PlanNode::random_table(self.random_ord_spec()).join(
            PlanNode::scan("lineitem"),
            vec![("o_orderkey", "l_orderkey")],
        );
        MonteCarloQuery::new(plan, AggregateSpec::sum(Expr::col("val"), "totalLoss"))
    }

    /// Total number of joining lineitem rows (sanity: equals `num_lineitems`).
    pub fn total_fanout(&self) -> u64 {
        self.fanouts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_mcdb::McdbEngine;

    #[test]
    fn generation_matches_the_configured_sizes() {
        let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
        assert_eq!(w.catalog.get("orders").unwrap().len(), 100);
        assert_eq!(w.catalog.get("lineitem").unwrap().len(), 800);
        assert_eq!(w.total_fanout(), 800);
        assert_eq!(w.fanouts.len(), 100);
    }

    #[test]
    fn fanout_skew_decays_across_order_keys() {
        let mut config = TpchConfig::test_scale();
        config.num_orders = 200;
        config.num_lineitems = 40_000;
        let w = TpchWorkload::generate(config).unwrap();
        // The first decile of orders should receive roughly twice the traffic
        // of the last decile (linear decay from 2x average to ~0).
        let first: u64 = w.fanouts[..20].iter().sum();
        let last: u64 = w.fanouts[180..].iter().sum();
        assert!(
            first > 5 * last.max(1),
            "fanout should be heavily skewed: first decile {first}, last decile {last}"
        );
    }

    #[test]
    fn hyper_prior_means_match_appendix_d() {
        let mut config = TpchConfig::test_scale();
        config.num_orders = 4_000;
        config.num_lineitems = 4_000;
        let w = TpchWorkload::generate(config).unwrap();
        let means = w
            .catalog
            .get("orders")
            .unwrap()
            .column_f64("o_mean")
            .unwrap();
        let vars = w
            .catalog
            .get("orders")
            .unwrap()
            .column_f64("o_var")
            .unwrap();
        let avg_mean: f64 = means.iter().sum::<f64>() / means.len() as f64;
        let avg_var: f64 = vars.iter().sum::<f64>() / vars.len() as f64;
        // InverseGamma(3,1) has mean 0.5; InverseGamma(3,0.5) has mean 0.25.
        assert!((avg_mean - 0.5).abs() < 0.05, "avg mean = {avg_mean}");
        assert!((avg_var - 0.25).abs() < 0.03, "avg var = {avg_var}");
        assert!(means.iter().all(|&m| m > 0.0));
        assert!(vars.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn oracle_matches_monte_carlo_on_a_small_instance() {
        let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
        let mut engine = McdbEngine::new();
        let results = engine
            .run(&w.total_loss_query(), &w.catalog, 400, 5)
            .unwrap();
        let dist = &results[0].1;
        // The Monte Carlo mean and sd must agree with the analytic oracle.
        assert!(
            (dist.mean() - w.oracle.mean).abs() < 4.0 * w.oracle.sd() / (400f64).sqrt() + 1e-9,
            "MC mean {} vs oracle {}",
            dist.mean(),
            w.oracle.mean
        );
        assert!(
            (dist.std_dev() - w.oracle.sd()).abs() < 0.15 * w.oracle.sd(),
            "MC sd {} vs oracle {}",
            dist.std_dev(),
            w.oracle.sd()
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let a = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
        let b = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
        assert_eq!(a.fanouts, b.fanouts);
        assert_eq!(a.oracle.mean, b.oracle.mean);
    }
}
