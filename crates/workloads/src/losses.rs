//! The customer-loss workload of paper §2 and the salary-inversion workload
//! of paper §5.

use std::sync::Arc;

use mcdbr_exec::plan::scalar_random_table;
use mcdbr_exec::{AggregateSpec, Expr, PlanNode};
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_prng::Pcg64;
use mcdbr_storage::{Catalog, Field, Result, Schema, TableBuilder, Value};
use mcdbr_vg::{Distribution, NormalVg};

/// Build the §2 catalog: a `means(cid, m)` parameter table for `n_customers`
/// customers whose mean losses are drawn uniformly from `mean_range`.
pub fn customer_losses_catalog(
    n_customers: usize,
    mean_range: (f64, f64),
    seed: u64,
) -> Result<Catalog> {
    let mut gen = Pcg64::new(seed);
    let dist = Distribution::Uniform {
        lo: mean_range.0,
        hi: mean_range.1,
    };
    let mut builder =
        TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]));
    for cid in 0..n_customers {
        builder = builder.row([
            Value::Int64(cid as i64),
            Value::Float64(dist.sample(&mut gen)),
        ]);
    }
    let mut catalog = Catalog::new();
    catalog.register("means", builder.build()?)?;
    Ok(catalog)
}

/// The §2 query: `SELECT SUM(val) AS totalLoss FROM Losses WHERE cid < cid_limit`,
/// where `Losses` is defined by the `Normal(VALUES(m, 1.0))` VG function over
/// the `means` table.
pub fn customer_losses_query(cid_limit: Option<i64>) -> MonteCarloQuery {
    let mut plan = PlanNode::random_table(scalar_random_table(
        "Losses",
        "means",
        Arc::new(NormalVg),
        vec![Expr::col("m"), Expr::lit(1.0)],
        &["cid"],
        "val",
        1,
    ));
    if let Some(limit) = cid_limit {
        plan = plan.filter(Expr::col("cid").lt(Expr::lit(limit)));
    }
    MonteCarloQuery::new(plan, AggregateSpec::sum(Expr::col("val"), "totalLoss"))
}

/// Build the §5 salary-inversion catalog: an `emp_params(eid, msal)` table of
/// mean salaries and a `sup(boss, peon)` supervision table where each
/// non-root employee reports to a random earlier employee.
pub fn salary_inversion_catalog(n_employees: usize, seed: u64) -> Result<Catalog> {
    assert!(n_employees >= 2, "need at least a boss and a peon");
    let mut gen = Pcg64::new(seed);
    let sal_dist = Distribution::Uniform {
        lo: 30.0,
        hi: 120.0,
    };
    let mut emp = TableBuilder::new(Schema::new(vec![
        Field::utf8("eid"),
        Field::float64("msal"),
    ]));
    for i in 0..n_employees {
        emp = emp.row([
            Value::str(format!("e{i}")),
            Value::Float64(sal_dist.sample(&mut gen)),
        ]);
    }
    let mut sup = TableBuilder::new(Schema::new(vec![Field::utf8("boss"), Field::utf8("peon")]));
    for i in 1..n_employees {
        let boss = gen.next_below(i as u64);
        sup = sup.row([Value::str(format!("e{boss}")), Value::str(format!("e{i}"))]);
    }
    let mut catalog = Catalog::new();
    catalog.register("emp_params", emp.build()?)?;
    catalog.register("sup", sup.build()?)?;
    Ok(catalog)
}

/// The §5 salary-inversion query over [`salary_inversion_catalog`]:
/// `SELECT SUM(emp2.sal - emp1.sal) FROM emp emp1, emp emp2, sup WHERE
/// sup.boss = emp1.eid AND sup.peon = emp2.eid AND emp2.sal > emp1.sal AND
/// emp1.sal < boss_cap AND emp2.sal > peon_floor`, with the random-attribute
/// predicates pulled up into the final predicate as MCDB-R requires.
pub fn salary_inversion_query(
    boss_cap: f64,
    peon_floor: f64,
    sal_variance: f64,
) -> MonteCarloQuery {
    let emp = || {
        PlanNode::random_table(scalar_random_table(
            "emp",
            "emp_params",
            Arc::new(NormalVg),
            vec![Expr::col("msal"), Expr::lit(sal_variance)],
            &["eid"],
            "sal",
            1,
        ))
    };
    // Joined schema: boss, peon, eid, sal, eid_1, sal_1 — emp1 is the boss
    // side (sal), emp2 the peon side (sal_1).
    let plan = PlanNode::scan("sup")
        .join(emp(), vec![("boss", "eid")])
        .join(emp(), vec![("peon", "eid")]);
    let aggregate = AggregateSpec::sum(Expr::col("sal_1").sub(Expr::col("sal")), "inversion");
    let predicate = Expr::col("sal_1")
        .gt(Expr::col("sal"))
        .and(Expr::col("sal").lt(Expr::lit(boss_cap)))
        .and(Expr::col("sal_1").gt(Expr::lit(peon_floor)));
    MonteCarloQuery::new(plan, aggregate).with_final_predicate(predicate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_mcdb::McdbEngine;

    #[test]
    fn losses_catalog_and_query_run_end_to_end() {
        let catalog = customer_losses_catalog(50, (1.0, 5.0), 7).unwrap();
        assert_eq!(catalog.get("means").unwrap().len(), 50);
        let mut engine = McdbEngine::new();
        let results = engine
            .run(&customer_losses_query(None), &catalog, 300, 3)
            .unwrap();
        let dist = &results[0].1;
        // The expected total is 50 * E[mean] = 50 * 3 = 150, give or take the
        // uniform draw of the means themselves.
        assert!((dist.mean() - 150.0).abs() < 25.0, "mean = {}", dist.mean());
        // Filtering on cid reduces the sum.
        let filtered = engine
            .run(&customer_losses_query(Some(10)), &catalog, 300, 3)
            .unwrap();
        assert!(filtered[0].1.mean() < dist.mean());
    }

    #[test]
    fn catalog_generation_is_reproducible() {
        let a = customer_losses_catalog(20, (0.0, 1.0), 5).unwrap();
        let b = customer_losses_catalog(20, (0.0, 1.0), 5).unwrap();
        let c = customer_losses_catalog(20, (0.0, 1.0), 6).unwrap();
        assert_eq!(a.get("means").unwrap(), b.get("means").unwrap());
        assert_ne!(a.get("means").unwrap(), c.get("means").unwrap());
    }

    #[test]
    fn salary_inversion_catalog_is_well_formed() {
        let catalog = salary_inversion_catalog(30, 11).unwrap();
        let emp = catalog.get("emp_params").unwrap();
        let sup = catalog.get("sup").unwrap();
        assert_eq!(emp.len(), 30);
        assert_eq!(sup.len(), 29);
        // Every boss and peon is a real employee id.
        let ids: Vec<String> = emp
            .column("eid")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        for row in sup.iter() {
            assert!(ids.contains(&row.value(0).to_string()));
            assert!(ids.contains(&row.value(1).to_string()));
        }
    }

    #[test]
    fn salary_inversion_query_runs_on_the_mcdb_engine() {
        let catalog = salary_inversion_catalog(15, 13).unwrap();
        let query = salary_inversion_query(90.0, 25.0, 16.0);
        let mut engine = McdbEngine::new();
        let results = engine.run(&query, &catalog, 200, 21).unwrap();
        let dist = &results[0].1;
        // The inversion total is non-negative because only positive
        // differences pass the predicate.
        assert!(dist.min() >= 0.0);
        assert_eq!(dist.len(), 200);
    }
}
