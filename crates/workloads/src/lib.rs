//! Synthetic workload generators for the MCDB-R experiments.
//!
//! The paper evaluates on (a) the simple customer-loss schema of §2, (b) the
//! salary-inversion self-join of §5, and (c) a TPC-H-like `orders ⋈ lineitem`
//! workload with inverse-gamma hyper-priors and a skewed join fanout
//! (Appendix D).  The intro also motivates financial-portfolio and logistics
//! scenarios.  This crate generates all of them at configurable scale so the
//! experiments run on a laptop while preserving the statistical structure the
//! paper relies on.

pub mod losses;
pub mod portfolio;
pub mod tpch;

pub use losses::{
    customer_losses_catalog, customer_losses_query, salary_inversion_catalog,
    salary_inversion_query,
};
pub use portfolio::{portfolio_catalog, portfolio_loss_query};
pub use tpch::{TpchConfig, TpchWorkload};
