//! The canonical demo workload the `mcdbr-server` binary, the loadgen
//! client, and the smoke tests agree on: the paper §2 customer-losses
//! catalog and query, so a fresh checkout can start a server and drive it
//! without writing any SQL-free plumbing of its own.

use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_storage::{Catalog, Result};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

/// Number of customers in the demo catalog.
pub const DEMO_CUSTOMERS: usize = 500;

/// Seed the demo catalog's parameter table is drawn with (fixed, so every
/// server instance serves the same data).
pub const DEMO_CATALOG_SEED: u64 = 0x5eed_cafe;

/// Build the demo catalog: `means(cid, m)` for [`DEMO_CUSTOMERS`]
/// customers.
pub fn demo_catalog() -> Result<Catalog> {
    customer_losses_catalog(DEMO_CUSTOMERS, (8.0, 12.0), DEMO_CATALOG_SEED)
}

/// The demo query: `SELECT SUM(val) AS totalLoss FROM Losses WHERE
/// cid < 250` over the `Normal(m, 1.0)` VG table.
pub fn demo_query() -> MonteCarloQuery {
    customer_losses_query(Some((DEMO_CUSTOMERS / 2) as i64))
}
