//! A blocking client for the server protocol — what the loadgen binary,
//! the benches, and the test suites speak.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mcdbr_dispatch::wire::{self, Frame, ReplyCode, WireError, WireResult};
use mcdbr_exec::QueryResultSamples;
use mcdbr_faults::BackoffPolicy;
use mcdbr_mcdb::MonteCarloQuery;

/// One server response to a query.
#[derive(Debug)]
pub enum QueryReply {
    /// The query ran; bit-exact samples plus the per-query counters.
    Ok {
        /// Per-group, per-repetition samples.
        samples: QueryResultSamples,
        /// The server's per-query counters.
        stats: wire::QueryStats,
    },
    /// The server turned the query away (admission, drain, or failure).
    Rejected {
        /// Why.
        code: ReplyCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A connected, handshaken client session.
///
/// Tracks the wire bytes it has exchanged ([`ServerClient::wire_bytes_sent`]
/// / [`ServerClient::wire_bytes_received`]), which the loadgen surfaces per
/// query — the client-side view of how chatty the protocol is.
#[derive(Debug)]
pub struct ServerClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    bytes_sent: u64,
    bytes_received: u64,
}

impl ServerClient {
    /// Connect and run the `Hello` handshake (client speaks first).
    pub fn connect(addr: impl ToSocketAddrs) -> WireResult<ServerClient> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = ServerClient {
            reader,
            writer,
            bytes_sent: 0,
            bytes_received: 0,
        };
        client.write(&wire::encode_hello())?;
        client.writer.flush()?;
        match client.read()? {
            Frame::Hello { magic, version } if magic == wire::WIRE_MAGIC => {
                if version != wire::WIRE_VERSION {
                    return Err(WireError::VersionMismatch {
                        ours: wire::WIRE_VERSION,
                        theirs: version,
                    });
                }
            }
            Frame::Hello { magic, .. } => return Err(WireError::BadMagic(magic)),
            Frame::Error { message } => return Err(WireError::Remote(message)),
            _ => return Err(WireError::Corrupt("expected Hello from server".into())),
        }
        Ok(client)
    }

    fn write(&mut self, payload: &[u8]) -> WireResult<()> {
        self.bytes_sent += wire::write_frame(&mut self.writer, payload)?;
        Ok(())
    }

    fn read(&mut self) -> WireResult<Frame> {
        let (payload, n) = wire::read_frame(&mut self.reader)?.ok_or(WireError::Truncated {
            what: "server response",
        })?;
        self.bytes_received += n;
        wire::decode_frame(&payload)
    }

    /// Total wire bytes this client has written (length prefixes included)
    /// since connecting, handshake and all.
    pub fn wire_bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total wire bytes this client has read since connecting.
    pub fn wire_bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Run `query` for `reps` repetitions under `master_seed`.
    ///
    /// A [`QueryReply::Rejected`] with [`ReplyCode::Busy`] is retryable;
    /// wire-level errors (the `Err` branch) mean the connection is gone.
    pub fn query(
        &mut self,
        query: &MonteCarloQuery,
        reps: usize,
        master_seed: u64,
    ) -> WireResult<QueryReply> {
        let payload = wire::encode_query(
            &query.plan,
            &query.aggregate,
            query.final_predicate.as_ref(),
            &query.group_by,
            reps as u64,
            master_seed,
        )?;
        self.write(&payload)?;
        self.writer.flush()?;
        match self.read()? {
            Frame::QueryResult(samples) => match self.read()? {
                Frame::QueryStats(stats) => Ok(QueryReply::Ok { samples, stats }),
                _ => Err(WireError::Corrupt(
                    "expected QueryStats after QueryResult".into(),
                )),
            },
            Frame::ErrorReply { code, message } => Ok(QueryReply::Rejected { code, message }),
            _ => Err(WireError::Corrupt("unexpected reply to Query".into())),
        }
    }

    /// Like [`ServerClient::query`], but retry `Busy` rejections until
    /// admitted (reconnecting is not needed — `Busy` leaves the connection
    /// healthy), waiting out a capped exponential backoff with seeded
    /// jitter between attempts via [`BackoffPolicy::default`].  Only
    /// `Busy` is retried: `Timeout`, `ShuttingDown`, and the rest are
    /// policy decisions the caller owns.
    pub fn query_retrying(
        &mut self,
        query: &MonteCarloQuery,
        reps: usize,
        master_seed: u64,
    ) -> WireResult<QueryReply> {
        self.query_retrying_with(query, reps, master_seed, &BackoffPolicy::default())
    }

    /// [`ServerClient::query_retrying`] under an explicit [`BackoffPolicy`]
    /// — the jitter stream is salted by `master_seed`, so concurrent
    /// clients retrying the same server decorrelate instead of stampeding
    /// in lockstep.  A bounded policy whose attempts run out returns the
    /// last `Busy` rejection for the caller to surface.
    pub fn query_retrying_with(
        &mut self,
        query: &MonteCarloQuery,
        reps: usize,
        master_seed: u64,
        policy: &BackoffPolicy,
    ) -> WireResult<QueryReply> {
        let mut attempt = 0u32;
        loop {
            match self.query(query, reps, master_seed)? {
                reply @ QueryReply::Rejected {
                    code: ReplyCode::Busy,
                    ..
                } => {
                    if policy.exhausted(attempt) {
                        return Ok(reply);
                    }
                    std::thread::sleep(policy.delay(attempt, master_seed));
                    attempt += 1;
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Fetch the server-wide counter snapshot.
    pub fn server_stats(&mut self) -> WireResult<wire::ServerStats> {
        self.write(&wire::encode_stats_request())?;
        self.writer.flush()?;
        match self.read()? {
            Frame::ServerStats(stats) => Ok(stats),
            _ => Err(WireError::Corrupt(
                "unexpected reply to StatsRequest".into(),
            )),
        }
    }

    /// Ask the server to begin a graceful drain, consuming the session.
    pub fn shutdown(mut self) -> WireResult<()> {
        self.write(&wire::encode_shutdown())?;
        self.writer.flush()?;
        Ok(())
    }
}
