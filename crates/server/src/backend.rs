//! [`FairBackend`]: a per-query [`ExecBackend`] adapter that routes a
//! query's phase-2 and aggregation work through the server's shared
//! [`FairScheduler`] instead of a private thread fan-out.
//!
//! The server hands every admitted query its own `FairBackend` wrapping
//! the server-wide inner backend (in-process, sharded, or process).  Block
//! instantiation decomposes into [`ShardTask`]s — the same self-describing
//! unit the sharded backend and the process dispatcher use — and
//! aggregation into contiguous repetition ranges
//! ([`mcdbr_exec::aggregate_rep_range`]); both kinds of unit are submitted
//! under the query's id, so the scheduler's round-robin ring interleaves
//! *tasks* of concurrent queries rather than running the queries serially.
//!
//! Bit-identity is inherited, not re-argued: shard tasks merge by skeleton
//! slot exactly like [`mcdbr_exec::ShardedBackend`], and rep-range partials
//! merge in repetition order with the group layout discovered over the
//! full set (range-invariant), so results equal a single-threaded run of
//! the same query bit for bit — the property `tests/server_concurrency.rs`
//! asserts across all three inner backends.
//!
//! The **process** inner backend keeps its own multi-process fan-out: its
//! block instantiation is one coordinator-side conversation holding the
//! dispatcher's state lock, so it runs as a *single* scheduler unit (the
//! blocking wire I/O occupies one pool slot; fairness is at block
//! granularity).  Aggregation still fans out per rep range, since the
//! process backend aggregates locally anyway.
//!
//! **Cancellation** is cooperative: every query carries a
//! [`mcdbr_exec::CancelToken`] (deadline-armed when the server config sets
//! a per-query deadline), checked on entry to block instantiation and
//! aggregation.  A query that blows its deadline fails with a typed
//! [`mcdbr_storage::Error::Timeout`] at its next block boundary — already
//! completed blocks are simply dropped, and no scheduler unit is ever
//! interrupted mid-flight.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mcdbr_exec::{
    aggregate_rep_range, merge_rep_partials, plan_shards, AggPartial, AggregateSpec,
    BlockBufferPool, BundleSet, CancelToken, DeterministicPrefix, ExecBackend, Expr, PlanNode,
    QueryResultSamples, ShardStats, ShardTask, TupleBundle,
};
use mcdbr_storage::{Catalog, Result};

use crate::sched::FairScheduler;

/// A per-query scheduler-routed backend.  See the [module docs](self).
pub struct FairBackend {
    inner: Arc<dyn ExecBackend>,
    sched: Arc<FairScheduler>,
    pool: Arc<BlockBufferPool>,
    /// The query id the scheduler keys fairness by.
    qid: u64,
    /// The query's cancellation token, checked cooperatively at every
    /// block boundary (block instantiation and aggregation entry) — a
    /// deadlined or cancelled query stops before starting its next block
    /// rather than being interrupted mid-unit, so partial work is never
    /// observable and the scheduler pool is never poisoned.
    cancel: CancelToken,
    /// Shard/rep-range units this query fanned out into.
    units: AtomicUsize,
    /// Cumulative queue wait across this query's units (shared with the
    /// unit closures).
    wait_ns: Arc<AtomicU64>,
    merge_ns: AtomicU64,
}

impl std::fmt::Debug for FairBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairBackend")
            .field("inner", &self.inner.name())
            .field("qid", &self.qid)
            .finish()
    }
}

impl FairBackend {
    /// Wrap `inner` for one query.  `pool` must be the same pool the
    /// session passes to [`ExecBackend::instantiate_block`] — the server
    /// wires one pool everywhere, and scheduler units (being `'static`)
    /// capture this `Arc` rather than the borrowed parameter.
    ///
    /// `cancel` carries the query's deadline (or is unbounded): the
    /// backend checks it at block boundaries, so a timed-out query fails
    /// with [`mcdbr_storage::Error::Timeout`] before its next block.
    pub fn new(
        inner: Arc<dyn ExecBackend>,
        sched: Arc<FairScheduler>,
        pool: Arc<BlockBufferPool>,
        qid: u64,
        cancel: CancelToken,
    ) -> Self {
        FairBackend {
            inner,
            sched,
            pool,
            qid,
            cancel,
            units: AtomicUsize::new(0),
            wait_ns: Arc::new(AtomicU64::new(0)),
            merge_ns: AtomicU64::new(0),
        }
    }

    /// Total nanoseconds this query's units spent waiting in the scheduler
    /// queue — the per-query contention signal the `QueryStats` frame
    /// reports.
    pub fn queue_wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// How many shard-task / rep-range units the query fanned out into.
    pub fn units_spawned(&self) -> usize {
        self.units.load(Ordering::Relaxed)
    }
}

impl ExecBackend for FairBackend {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn prepare_dispatch(
        &self,
        plan: &PlanNode,
        catalog: &Catalog,
        prefix: &DeterministicPrefix,
    ) -> Result<()> {
        self.inner.prepare_dispatch(plan, catalog, prefix)
    }

    fn instantiate_block(
        &self,
        prefix: &DeterministicPrefix,
        _pool: &BlockBufferPool,
        _threads: usize,
        base_pos: u64,
        num_values: usize,
    ) -> Result<BundleSet> {
        self.cancel.check()?;
        let skeleton = prefix.skeleton();

        if !matches!(self.inner.name(), "in-process" | "sharded") {
            // Process (and any custom) inner: one delegating unit.  The
            // dispatcher's conversation is serialized behind its own state
            // lock, and the prefix is re-derivable (`bind` is a pure
            // function of skeleton + seed, and the skeleton Arc — which the
            // dispatcher keys primed plans by — is shared).
            let inner = Arc::clone(&self.inner);
            let pool = Arc::clone(&self.pool);
            let skeleton = Arc::clone(skeleton);
            let master_seed = prefix.master_seed();
            self.units.fetch_add(1, Ordering::Relaxed);
            let mut out = self.sched.run_batch(
                self.qid,
                vec![move || {
                    let prefix = skeleton.bind(master_seed);
                    inner.instantiate_block(&prefix, &pool, 1, base_pos, num_values)
                }],
                &self.wait_ns,
            );
            return out.pop().expect("one unit, one result");
        }

        // In-process / sharded inner: decompose into shard tasks at the
        // scheduler's pool width and merge by skeleton slot, exactly like
        // `ShardedBackend::instantiate_block`.
        let tasks: Vec<ShardTask> = plan_shards(skeleton, self.sched.pool_size())
            .into_iter()
            .map(|key_range| ShardTask {
                skeleton: Arc::clone(skeleton),
                master_seed: prefix.master_seed(),
                key_range,
                base_pos,
                num_values,
            })
            .collect();
        self.units.fetch_add(tasks.len(), Ordering::Relaxed);
        let jobs: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let pool = Arc::clone(&self.pool);
                move || task.run(&pool)
            })
            .collect();
        let partials = self.sched.run_batch(self.qid, jobs, &self.wait_ns);

        let merge_start = Instant::now();
        let mut slots: Vec<Option<TupleBundle>> = Vec::with_capacity(skeleton.num_bundles());
        slots.resize_with(skeleton.num_bundles(), || None);
        for partial in partials {
            for (idx, bundle) in partial?.bundles {
                slots[idx] = bundle;
            }
        }
        self.merge_ns
            .fetch_add(merge_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(BundleSet {
            schema: skeleton.schema().clone(),
            bundles: slots.into_iter().flatten().collect(),
            registry: prefix.registry().clone(),
            num_reps: num_values,
        })
    }

    fn aggregate(
        &self,
        set: &BundleSet,
        agg: &AggregateSpec,
        group_by: &[String],
        final_predicate: Option<&Expr>,
        _threads: usize,
    ) -> Result<QueryResultSamples> {
        self.cancel.check()?;
        // Contiguous, balanced repetition ranges — the only safe parallel
        // unit (within a repetition the bundle fold order is the
        // floating-point contract).  The set travels into the units as a
        // cheap Arc'd clone (bundle chains share `Arc<Column>` segments).
        let lens = mcdbr_prng::balanced_chunks(set.num_reps, self.sched.pool_size());
        if lens.len() <= 1 {
            return self.inner.aggregate(set, agg, group_by, final_predicate, 1);
        }
        let owned = Arc::new(set.clone());
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(lens.len());
        let mut lo = 0usize;
        for len in lens {
            ranges.push((lo, lo + len));
            lo += len;
        }
        self.units.fetch_add(ranges.len(), Ordering::Relaxed);
        let jobs: Vec<_> = ranges
            .into_iter()
            .map(|(lo, hi)| {
                let set = Arc::clone(&owned);
                let agg = agg.clone();
                let group_by = group_by.to_vec();
                let final_predicate = final_predicate.cloned();
                move || aggregate_rep_range(&set, &agg, &group_by, final_predicate.as_ref(), lo, hi)
            })
            .collect();
        let partials: Result<Vec<AggPartial>> = self
            .sched
            .run_batch(self.qid, jobs, &self.wait_ns)
            .into_iter()
            .collect();

        let merge_start = Instant::now();
        let samples = merge_rep_partials(set, agg, group_by, partials?)?;
        self.merge_ns
            .fetch_add(merge_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(samples)
    }

    fn shard_stats(&self) -> ShardStats {
        let mut stats = self.inner.shard_stats();
        stats.shards_spawned += self.units.load(Ordering::Relaxed);
        stats.shard_merge_ns += self.merge_ns.load(Ordering::Relaxed);
        stats
    }
}
