//! The fair scheduler: a bounded worker pool that interleaves work units
//! from concurrent queries instead of running queries serially.
//!
//! Every in-flight query owns a FIFO **unit queue**; the queues sit in a
//! round-robin ring.  A worker takes *one* unit from the front queue, then
//! rotates that queue to the back of the ring — so a query that fanned out
//! into many shard tasks cannot starve a query that arrived while it was
//! running: with q live queries, each gets every q-th worker slot
//! regardless of how many units it has queued.  Units within one query
//! stay FIFO, which the executors rely on for nothing (results are
//! reassembled by index) but keeps latency profiles intuitive.
//!
//! The scheduler never runs a unit on the thread that submitted it:
//! connection threads block in [`FairScheduler::run_batch`] while pool
//! workers execute, which is what makes per-unit **queue-wait** a real
//! measure of cross-query contention.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One schedulable unit of work.
type Unit = Box<dyn FnOnce() + Send + 'static>;

struct SchedState {
    /// The round-robin ring: `(query id, that query's FIFO unit queue)`.
    queues: VecDeque<(u64, VecDeque<Unit>)>,
    /// Total queued units across all queries (fast idle check).
    queued: usize,
    shutdown: bool,
}

/// The bounded, query-fair worker pool.  See the [module docs](self) for
/// the rotation rule.
pub struct FairScheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
    pool_size: usize,
}

impl std::fmt::Debug for FairScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairScheduler")
            .field("pool_size", &self.pool_size)
            .finish()
    }
}

impl FairScheduler {
    /// Start a scheduler with `workers` pool threads (minimum 1).
    pub fn start(workers: usize) -> Arc<FairScheduler> {
        let workers = workers.max(1);
        let sched = Arc::new(FairScheduler {
            state: Mutex::new(SchedState {
                queues: VecDeque::new(),
                queued: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            pool_size: workers,
        });
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.worker_loop())
            })
            .collect();
        *sched.workers.lock().expect("scheduler pool") = handles;
        sched
    }

    /// Number of pool threads.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Enqueue one unit under `qid`'s queue (creating it on first use).
    pub fn submit(&self, qid: u64, unit: Unit) {
        let mut state = self.state.lock().expect("scheduler state");
        match state.queues.iter_mut().find(|(id, _)| *id == qid) {
            Some((_, queue)) => queue.push_back(unit),
            None => state.queues.push_back((qid, VecDeque::from([unit]))),
        }
        state.queued += 1;
        drop(state);
        self.work.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let unit = {
                let mut state = self.state.lock().expect("scheduler state");
                loop {
                    if state.queued > 0 {
                        break;
                    }
                    // Drain-then-exit: queued work is always finished, even
                    // when shutdown raced in while units were pending.
                    if state.shutdown {
                        return;
                    }
                    state = self.work.wait(state).expect("scheduler state");
                }
                // Round-robin: one unit from the front query, then rotate
                // that query to the back of the ring.
                let (qid, mut queue) = state.queues.pop_front().expect("queued > 0");
                let unit = queue.pop_front().expect("non-empty queue");
                state.queued -= 1;
                if !queue.is_empty() {
                    state.queues.push_back((qid, queue));
                }
                unit
            };
            unit();
        }
    }

    /// Run `jobs` as units of query `qid` and collect their results in
    /// submission order, blocking the calling thread until all complete.
    /// Per-unit queue wait (submission → execution start) is accumulated
    /// into `wait_ns`.
    ///
    /// Must not be called from a scheduler worker thread (a unit waiting on
    /// units would deadlock the pool); connection threads are the callers.
    pub fn run_batch<T, F>(&self, qid: u64, jobs: Vec<F>, wait_ns: &Arc<AtomicU64>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let wait_ns = Arc::clone(wait_ns);
            let submitted = Instant::now();
            self.submit(
                qid,
                Box::new(move || {
                    wait_ns.fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    // A send failure means the caller gave up on the batch;
                    // the unit's work is simply dropped.
                    let _ = tx.send((idx, job()));
                }),
            );
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out) = rx.recv().expect("scheduler completed every unit");
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect()
    }

    /// Finish all queued units, then stop and join the pool threads.
    pub fn shutdown(&self) {
        {
            let mut state = self.state.lock().expect("scheduler state");
            state.shutdown = true;
        }
        self.work.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("scheduler pool")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    /// With one worker and two queries' units queued behind a gate, the
    /// rotation rule strictly alternates them — never the serial
    /// A1 A2 A3 B1 B2 B3 a plain FIFO would produce.
    #[test]
    fn round_robin_interleaves_queries() {
        let sched = FairScheduler::start(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();

        // The gate unit occupies the single worker while we queue the rest.
        sched.submit(
            0,
            Box::new(move || {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            }),
        );
        started_rx.recv().unwrap();

        for (qid, label) in [
            (1, "A1"),
            (1, "A2"),
            (1, "A3"),
            (2, "B1"),
            (2, "B2"),
            (2, "B3"),
        ] {
            let order = Arc::clone(&order);
            sched.submit(qid, Box::new(move || order.lock().unwrap().push(label)));
        }
        gate_tx.send(()).unwrap();
        sched.shutdown();

        let order = order.lock().unwrap().clone();
        assert_eq!(order, vec!["A1", "B1", "A2", "B2", "A3", "B3"]);
    }

    #[test]
    fn run_batch_preserves_index_order() {
        let sched = FairScheduler::start(3);
        let wait = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..16u64).map(|i| move || i * i).collect();
        let out = sched.run_batch(7, jobs, &wait);
        assert_eq!(out, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_units() {
        let sched = FairScheduler::start(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            sched.submit(
                1,
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        sched.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
