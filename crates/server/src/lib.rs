//! `mcdbr-server`: the resident, concurrent Monte Carlo query service.
//!
//! Everything below PR 6 is a one-shot binary: build an engine, run a
//! query, exit — the warm [`mcdbr_exec::SessionCache`], the recycled
//! [`mcdbr_exec::BlockBufferPool`], and the spawned worker processes all
//! die with the process.  This crate keeps them **resident** and shares
//! them across many concurrent clients:
//!
//! * [`service`] — the TCP listener ([`Server`] / [`ServerHandle`]):
//!   MCDW-framed request/response (`Hello`, `Query`, `QueryResult` +
//!   `QueryStats`, `ErrorReply`, `StatsRequest`/`ServerStats`,
//!   `Shutdown`), admission control with typed `Busy` replies, and a
//!   graceful drain that finishes in-flight queries before exit.
//! * [`sched`] — [`FairScheduler`]: a bounded worker pool whose
//!   round-robin ring interleaves work *units* from concurrent queries,
//!   so one big query cannot starve the rest.
//! * [`backend`] — [`FairBackend`]: the per-query [`mcdbr_exec::ExecBackend`]
//!   adapter that decomposes a query into shard-task and rep-range units
//!   on that scheduler; composes with every inner backend
//!   (`MCDBR_BACKEND={inprocess,sharded,process}`) bit-identically.
//! * [`client`] — [`ServerClient`]: the blocking client the loadgen
//!   binary, benches, and test suites speak.
//! * [`load`] — [`load::run_load`]: N concurrent connections measuring
//!   p50/p99 latency and queries/sec.
//! * [`demo`] — the canonical customer-losses workload the binary and
//!   loadgen agree on.
//! * [`testing`] — deterministic gates for concurrency tests.
//!
//! The correctness story is the repo's usual one, extended to
//! concurrency: every result a client receives is **bit-identical** to a
//! single-threaded `McdbEngine` run of the same `(query, seed)`, for any
//! interleaving of clients, any backend, and any scheduler width —
//! proven by `tests/server_concurrency.rs`, fuzzed at the protocol layer
//! by `tests/server_fuzz.rs`, and exercised under faults (killed
//! clients, killed workers, shutdown with queries in flight) by
//! `tests/server_faults.rs`.

#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod demo;
pub mod load;
pub mod sched;
pub mod service;
pub mod testing;

pub use backend::FairBackend;
pub use client::{QueryReply, ServerClient};
pub use load::{run_load, run_load_with, LoadReport};
pub use sched::FairScheduler;
pub use service::{
    default_query_deadline, query_deadline_from_env, Server, ServerConfig, ServerHandle,
};
