//! Deterministic concurrency-test instruments.
//!
//! Races make bad tests; gates make them deterministic.  [`GateBackend`]
//! is an [`ExecBackend`] whose block instantiation *blocks* until the test
//! opens the gate — so a test can hold a query provably in flight while it
//! probes admission control, kills a client, or starts a drain, then
//! release the gate and assert the outcome.  Execution delegates to the
//! in-process backend, so results stay bit-identical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use mcdbr_exec::{
    AggregateSpec, BlockBufferPool, BundleSet, DeterministicPrefix, ExecBackend, Expr,
    InProcessBackend, QueryResultSamples, ShardStats,
};
use mcdbr_storage::Result;

/// An in-process backend whose `instantiate_block` waits at a gate.  See
/// the [module docs](self).
#[derive(Debug, Default)]
pub struct GateBackend {
    inner: InProcessBackend,
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicUsize,
}

impl GateBackend {
    /// A new backend with the gate closed.
    pub fn new() -> Self {
        GateBackend::default()
    }

    /// Open the gate permanently, releasing every waiter (current and
    /// future).
    pub fn open(&self) {
        *self.open.lock().expect("gate") = true;
        self.cv.notify_all();
    }

    /// How many block instantiations have *entered* (reached the gate).
    pub fn entered(&self) -> usize {
        self.entered.load(Ordering::SeqCst)
    }

    /// Spin until at least `n` block instantiations have entered — i.e.
    /// until `n` queries are provably in flight inside the executor.
    pub fn wait_entered(&self, n: usize) {
        while self.entered() < n {
            std::thread::yield_now();
        }
    }
}

impl ExecBackend for GateBackend {
    fn name(&self) -> &'static str {
        "gated"
    }

    fn instantiate_block(
        &self,
        prefix: &DeterministicPrefix,
        pool: &BlockBufferPool,
        threads: usize,
        base_pos: u64,
        num_values: usize,
    ) -> Result<BundleSet> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().expect("gate");
        while !*open {
            open = self.cv.wait(open).expect("gate");
        }
        drop(open);
        self.inner
            .instantiate_block(prefix, pool, threads, base_pos, num_values)
    }

    fn aggregate(
        &self,
        set: &BundleSet,
        agg: &AggregateSpec,
        group_by: &[String],
        final_predicate: Option<&Expr>,
        threads: usize,
    ) -> Result<QueryResultSamples> {
        self.inner
            .aggregate(set, agg, group_by, final_predicate, threads)
    }

    fn shard_stats(&self) -> ShardStats {
        self.inner.shard_stats()
    }
}
