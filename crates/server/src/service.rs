//! The resident query service: a TCP listener serving concurrent Monte
//! Carlo queries over one shared [`SessionCache`] + [`BlockBufferPool`].
//!
//! ## Conversation
//!
//! The wire discipline is `mcdbr_dispatch::wire`'s MCDW framing over TCP;
//! the client is the handshake initiator (it speaks `Hello` first, like
//! the dispatch coordinator does to a worker):
//!
//! ```text
//! client → server             server → client
//! ──────────────              ───────────────
//! Hello{magic, version}   →
//!                         ←   Hello{magic, version}     (or Error + close)
//! Query{plan, agg, ...}   →
//!                         ←   QueryResult{samples}      (success...)
//!                         ←   QueryStats{counters}      (...terminator)
//!                         ←   ErrorReply{code, msg}     (rejection/failure)
//! StatsRequest            →
//!                         ←   ServerStats{totals}
//! Shutdown                →                             (begin graceful drain)
//! ```
//!
//! ## Admission, fairness, drain
//!
//! * **Admission**: at most `max_inflight` queries execute at once; the
//!   `max_inflight + 1`-th gets a typed `Busy` reply immediately (bounded
//!   work, no unbounded queue build-up).  Draining servers reply
//!   `ShuttingDown`.
//! * **Fairness**: each admitted query runs through a per-query
//!   [`FairBackend`] that decomposes its work into
//!   shard-task / rep-range units on the shared [`FairScheduler`]; the
//!   scheduler round-robins across queries, so a big query cannot starve
//!   a small one.
//! * **Drain**: `Shutdown` (frame or [`ServerHandle::shutdown`]) stops
//!   admitting, lets every in-flight query finish and deliver its full
//!   response, then closes idle connections and joins all threads.  A
//!   malformed frame kills only its own connection — the accept loop and
//!   every other client are unaffected; a client that dies mid-query has
//!   its slot reclaimed when the response write fails.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mcdbr_dispatch::wire::{self, Frame, ReplyCode, WireError, WireResult};
use mcdbr_exec::{
    par, BlockBufferPool, CancelToken, ExecBackend, QueryResultSamples, SessionCache, ShardStats,
};
use mcdbr_faults::{FaultAction, FaultInjector, FaultPoint};
use mcdbr_mcdb::{run_query_shared, MonteCarloQuery};
use mcdbr_storage::{Catalog, Error, Result};

use crate::backend::FairBackend;
use crate::sched::FairScheduler;

/// Server tuning knobs; `Default` is sized to the machine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an OS-assigned port
    /// ([`ServerHandle::addr`] reports the real one).
    pub addr: String,
    /// Scheduler pool width (work-unit parallelism across all queries).
    pub workers: usize,
    /// Admission cap: queries executing at once before `Busy` replies.
    pub max_inflight: usize,
    /// Per-query wall-clock deadline.  A query past its deadline is
    /// cancelled cooperatively at its next block boundary and answered
    /// with a typed [`ReplyCode::Timeout`] reply; `None` (the default)
    /// never times queries out.
    pub query_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = par::default_threads().max(2);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            max_inflight: workers * 2,
            query_deadline: default_query_deadline(),
        }
    }
}

/// Parse a `MCDBR_QUERY_DEADLINE_MS` value: a positive integer millisecond
/// count arms per-query deadlines; unset, empty, zero, or malformed means
/// no deadline.
pub fn query_deadline_from_env(raw: Option<&str>) -> Option<Duration> {
    raw.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// The process-wide default per-query deadline, read once from
/// `MCDBR_QUERY_DEADLINE_MS` (see [`query_deadline_from_env`]).
pub fn default_query_deadline() -> Option<Duration> {
    static DEADLINE: OnceLock<Option<Duration>> = OnceLock::new();
    *DEADLINE.get_or_init(|| {
        query_deadline_from_env(std::env::var("MCDBR_QUERY_DEADLINE_MS").ok().as_deref())
    })
}

/// Everything the accept loop, connection threads, and handle share.
struct Shared {
    catalog: Catalog,
    cache: Arc<SessionCache>,
    pool: Arc<BlockBufferPool>,
    inner: Arc<dyn ExecBackend>,
    sched: Arc<FairScheduler>,
    max_inflight: usize,
    query_deadline: Option<Duration>,
    addr: SocketAddr,
    gate: Mutex<Gate>,
    drained: Condvar,
    /// Inner-backend counter snapshot at startup, so server-wide stats
    /// report this server's activity even on a pre-used backend.
    baseline: ShardStats,
    next_qid: AtomicU64,
    queries_served: AtomicU64,
    plan_executions: AtomicU64,
    /// Scheduler units (shard tasks + rep ranges) dispatched across all
    /// queries; the process inner's wire tasks are reported on top.
    tasks_dispatched: AtomicU64,
    busy_rejections: AtomicU64,
    /// Admitted queries cancelled at a block boundary for blowing the
    /// per-query deadline (each is answered with a typed `Timeout` reply).
    query_timeouts: AtomicU64,
    connections: AtomicU64,
    /// Live write-halves of accepted connections, force-closed after drain
    /// so reader loops blocked on idle clients terminate.  Each entry is
    /// removed when its connection thread exits — a lingering clone would
    /// keep the socket from ever sending FIN (and leak the fd).
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

#[derive(Debug, Default)]
struct Gate {
    draining: bool,
    inflight: usize,
}

/// What admission decided for one query.
enum Admission {
    Admitted,
    Busy,
    Draining,
}

/// Releases an admission slot on every exit path — including a failed
/// response write to a killed client.
struct SlotGuard {
    shared: Arc<Shared>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let mut gate = self.shared.gate.lock().expect("gate");
        gate.inflight -= 1;
        drop(gate);
        self.shared.drained.notify_all();
    }
}

impl Shared {
    fn admit(self: &Arc<Self>) -> (Admission, Option<SlotGuard>) {
        let mut gate = self.gate.lock().expect("gate");
        if gate.draining {
            return (Admission::Draining, None);
        }
        if gate.inflight >= self.max_inflight {
            return (Admission::Busy, None);
        }
        gate.inflight += 1;
        (
            Admission::Admitted,
            Some(SlotGuard {
                shared: Arc::clone(self),
            }),
        )
    }

    fn begin_drain(&self) {
        {
            let mut gate = self.gate.lock().expect("gate");
            gate.draining = true;
        }
        self.drained.notify_all();
        // Unblock a listener parked in accept(): the poison connection is
        // accepted, seen during drain, and dropped.
        let _ = TcpStream::connect(self.addr);
    }

    fn is_draining(&self) -> bool {
        self.gate.lock().expect("gate").draining
    }

    fn wait_drained(&self) {
        let mut gate = self.gate.lock().expect("gate");
        while !(gate.draining && gate.inflight == 0) {
            gate = self.drained.wait(gate).expect("gate");
        }
    }

    fn server_stats(&self) -> wire::ServerStats {
        let window = self.inner.shard_stats().since(self.baseline);
        wire::ServerStats {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            skeleton_hits: self.cache.skeleton_hits() as u64,
            skeleton_misses: self.cache.skeleton_misses() as u64,
            plan_executions: self.plan_executions.load(Ordering::Relaxed),
            tasks_dispatched: self.tasks_dispatched.load(Ordering::Relaxed)
                + window.tasks_dispatched as u64,
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            inflight: self.gate.lock().expect("gate").inflight as u64,
            query_timeouts: self.query_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Execute one admitted query through a fresh per-query [`FairBackend`].
    fn run_query(
        self: &Arc<Self>,
        query: &MonteCarloQuery,
        reps: usize,
        master_seed: u64,
    ) -> Result<(QueryResultSamples, wire::QueryStats)> {
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        let cancel = match self.query_deadline {
            Some(deadline) => CancelToken::with_deadline(deadline),
            None => CancelToken::unbounded(),
        };
        let fair = Arc::new(FairBackend::new(
            Arc::clone(&self.inner),
            Arc::clone(&self.sched),
            Arc::clone(&self.pool),
            qid,
            cancel,
        ));
        let as_backend: Arc<dyn ExecBackend> = Arc::clone(&fair) as Arc<dyn ExecBackend>;
        let baseline = as_backend.shard_stats();
        let exec_start = Instant::now();
        let (samples, run) = match run_query_shared(
            query,
            &self.catalog,
            reps,
            master_seed,
            &self.cache,
            &self.pool,
            &as_backend,
        ) {
            Ok(out) => out,
            Err(e) => {
                if matches!(e, Error::Timeout(_)) {
                    self.query_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        let exec_ns = exec_start.elapsed().as_nanos() as u64;
        let window = as_backend.shard_stats().since(baseline);
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        self.plan_executions
            .fetch_add(run.plan_executions as u64, Ordering::Relaxed);
        self.tasks_dispatched
            .fetch_add(fair.units_spawned() as u64, Ordering::Relaxed);
        Ok((
            samples,
            wire::QueryStats {
                skeleton_hit: run.skeleton_hit,
                plan_executions: run.plan_executions as u64,
                tasks_dispatched: window.tasks_dispatched as u64,
                shards_spawned: window.shards_spawned as u64,
                queue_wait_ns: fair.queue_wait_ns(),
                exec_ns,
            },
        ))
    }
}

/// The server constructor; returns a [`ServerHandle`] once listening.
pub struct Server;

impl Server {
    /// Bind `config.addr`, start the scheduler pool and the accept loop,
    /// and serve `catalog` through `inner` until shut down.
    pub fn start(
        catalog: Catalog,
        inner: Arc<dyn ExecBackend>,
        config: ServerConfig,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| mcdbr_storage::Error::Invalid(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| mcdbr_storage::Error::Invalid(format!("local addr: {e}")))?;
        let baseline = inner.shard_stats();
        let shared = Arc::new(Shared {
            catalog,
            cache: Arc::new(SessionCache::new()),
            pool: Arc::new(BlockBufferPool::new()),
            inner,
            sched: FairScheduler::start(config.workers),
            max_inflight: config.max_inflight.max(1),
            query_deadline: config.query_deadline,
            addr,
            gate: Mutex::new(Gate::default()),
            drained: Condvar::new(),
            baseline,
            next_qid: AtomicU64::new(1),
            queries_served: AtomicU64::new(0),
            plan_executions: AtomicU64::new(0),
            tasks_dispatched: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            query_timeouts: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            conn_threads: Mutex::new(Vec::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(accept_shared, listener));
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
        })
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.is_draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(write_half) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conns")
                .insert(conn_id, write_half);
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            // A connection-level wire error (fuzzed garbage, truncated
            // frame, client gone) closes this connection only — and even a
            // panicking handler must release the registered write-half, or
            // the peer never sees the connection close.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = serve_conn(&conn_shared, stream);
            }));
            conn_shared.conns.lock().expect("conns").remove(&conn_id);
        });
        shared
            .conn_threads
            .lock()
            .expect("conn threads")
            .push(handle);
    }
}

/// Write one post-handshake reply frame, consulting the chaos plan's
/// *delay* point only.  A server must never drop or truncate a reply —
/// clients have no read timeout and a lost frame would hang them, which is
/// a client bug chaos is not trying to find — so `MCDBR_FAULTS` degrades
/// the server to a slow pipe, nothing worse.
fn write_reply(
    writer: &mut TcpStream,
    payload: &[u8],
    faults: Option<&FaultInjector>,
) -> WireResult<u64> {
    if let Some(injector) = faults {
        if let Some(FaultAction::Delay(pause)) = injector.decide(FaultPoint::DelayedWrite) {
            std::thread::sleep(pause);
        }
    }
    wire::write_frame(writer, payload)
}

/// Handshake then request loop for one connection.
fn serve_conn(shared: &Arc<Shared>, stream: TcpStream) -> WireResult<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let faults = mcdbr_faults::env_injector();
    let faults = faults.as_deref();

    // Client speaks Hello first; anything else — bad magic, wrong version,
    // garbage — earns a best-effort Error frame and a close, exactly like
    // the worker handshake.
    let Some((payload, _)) = wire::read_frame(&mut reader)? else {
        return Ok(()); // connected-and-left (or the drain poison pill)
    };
    match wire::decode_frame(&payload) {
        Ok(Frame::Hello { magic, version }) => {
            if magic != wire::WIRE_MAGIC {
                let err = WireError::BadMagic(magic);
                reject_handshake(&mut writer, &err)?;
                return Err(err);
            }
            if version != wire::WIRE_VERSION {
                let err = WireError::VersionMismatch {
                    ours: wire::WIRE_VERSION,
                    theirs: version,
                };
                reject_handshake(&mut writer, &err)?;
                return Err(err);
            }
            wire::write_frame(&mut writer, &wire::encode_hello())?;
            writer.flush()?;
        }
        Ok(_) => {
            let err = WireError::Corrupt("expected Hello to open the connection".into());
            reject_handshake(&mut writer, &err)?;
            return Err(err);
        }
        Err(err) => {
            reject_handshake(&mut writer, &err)?;
            return Err(err);
        }
    }

    loop {
        let Some((payload, _)) = wire::read_frame(&mut reader)? else {
            return Ok(()); // clean disconnect
        };
        let frame = match wire::decode_frame(&payload) {
            Ok(frame) => frame,
            Err(err) => {
                // Typed reply, then drop the connection: after a framing
                // error the stream offset can no longer be trusted.
                let _ = write_reply(
                    &mut writer,
                    &wire::encode_error_reply(ReplyCode::Invalid, &err.to_string()),
                    faults,
                );
                let _ = writer.flush();
                return Err(err);
            }
        };
        match frame {
            Frame::Query {
                plan,
                aggregate,
                final_predicate,
                group_by,
                reps,
                master_seed,
            } => {
                let reply = match shared.admit() {
                    (Admission::Draining, _) => {
                        wire::encode_error_reply(ReplyCode::ShuttingDown, "server is draining")
                    }
                    (Admission::Busy, _) => {
                        shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        wire::encode_error_reply(
                            ReplyCode::Busy,
                            "admission cap reached; retry later",
                        )
                    }
                    (Admission::Admitted, guard) => {
                        let _slot = guard;
                        let query = MonteCarloQuery {
                            plan,
                            aggregate,
                            final_predicate,
                            group_by,
                        };
                        match shared.run_query(&query, reps as usize, master_seed) {
                            Ok((samples, stats)) => {
                                write_reply(
                                    &mut writer,
                                    &wire::encode_query_result(&samples),
                                    faults,
                                )?;
                                write_reply(&mut writer, &wire::encode_query_stats(stats), faults)?;
                                writer.flush()?;
                                continue;
                            }
                            // A deadlined query earns the typed Timeout
                            // code — retryable policy lives client-side —
                            // while everything else stays Internal.
                            Err(e @ Error::Timeout(_)) => {
                                wire::encode_error_reply(ReplyCode::Timeout, &e.to_string())
                            }
                            Err(e) => wire::encode_error_reply(ReplyCode::Internal, &e.to_string()),
                        }
                        // _slot drops here: the admission slot is released
                        // whether the reply write below succeeds or not.
                    }
                };
                write_reply(&mut writer, &reply, faults)?;
                writer.flush()?;
            }
            Frame::StatsRequest => {
                write_reply(
                    &mut writer,
                    &wire::encode_server_stats(shared.server_stats()),
                    faults,
                )?;
                writer.flush()?;
            }
            Frame::Shutdown => {
                shared.begin_drain();
                return Ok(());
            }
            _ => {
                // Worker-protocol or server→client frames on a request
                // stream: typed reply, then close.
                let err = WireError::Corrupt("frame not valid on a client request stream".into());
                let _ = write_reply(
                    &mut writer,
                    &wire::encode_error_reply(ReplyCode::Invalid, &err.to_string()),
                    faults,
                );
                let _ = writer.flush();
                return Err(err);
            }
        }
    }
}

fn reject_handshake(writer: &mut TcpStream, err: &WireError) -> WireResult<()> {
    let _ = wire::write_frame(writer, &wire::encode_error(&err.to_string()));
    let _ = writer.flush();
    Ok(())
}

/// A running server: address, live stats, graceful shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr())
            .finish()
    }
}

impl ServerHandle {
    /// The bound listen address (the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared session cache (exposed for exact-total test assertions).
    pub fn cache(&self) -> &Arc<SessionCache> {
        &self.shared.cache
    }

    /// The shared block-buffer pool (exposed for exact-total assertions).
    pub fn pool(&self) -> &Arc<BlockBufferPool> {
        &self.shared.pool
    }

    /// A server-wide counter snapshot.
    pub fn stats(&self) -> wire::ServerStats {
        self.shared.server_stats()
    }

    /// Whether a graceful drain has begun (a client sent `Shutdown`, or
    /// [`ServerHandle::shutdown`] was called).
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Block until a drain has started (via a client `Shutdown` frame or
    /// [`ServerHandle::shutdown`]) *and* every in-flight query finished.
    pub fn wait_drained(&self) {
        self.shared.wait_drained();
    }

    /// Gracefully shut down: stop admitting, let in-flight queries finish
    /// and deliver their responses, close idle connections, join every
    /// thread, stop the scheduler.  Returns the final counter snapshot.
    pub fn shutdown(mut self) -> wire::ServerStats {
        self.shared.begin_drain();
        self.shared.wait_drained();
        let stats = self.shared.server_stats();
        // In-flight work is done; now idle reader loops may terminate.
        for (_, conn) in self.shared.conns.lock().expect("conns").drain() {
            let _ = conn.shutdown(SockShutdown::Both);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = self
            .shared
            .conn_threads
            .lock()
            .expect("conn threads")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.sched.shutdown();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_deadline_env_rules() {
        assert_eq!(query_deadline_from_env(None), None);
        assert_eq!(query_deadline_from_env(Some("")), None);
        assert_eq!(query_deadline_from_env(Some("0")), None);
        assert_eq!(query_deadline_from_env(Some("nope")), None);
        assert_eq!(
            query_deadline_from_env(Some(" 1500 ")),
            Some(Duration::from_millis(1500))
        );
    }
}
