//! `mcdbr-server` — a resident MCDB-R query service over the demo
//! customer-losses catalog.
//!
//! ```text
//! mcdbr-server [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!              [--port-file PATH]
//! ```
//!
//! The execution backend is environment-selected exactly like the rest of
//! the repo: `MCDBR_BACKEND={inprocess,sharded,process}` (with
//! `MCDBR_SHARDS` / `MCDBR_WORKERS`).  `--addr 127.0.0.1:0` binds an
//! ephemeral port; `--port-file` writes the bound `host:port` so scripts
//! (CI, loadgen) can find it.  The process exits after a client sends the
//! `Shutdown` frame and every in-flight query has drained.

use std::process::ExitCode;

use mcdbr_server::demo;
use mcdbr_server::service::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mcdbr-server [--addr HOST:PORT] [--workers N] [--max-inflight N] \
         [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_missing(flag));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_count(&value("--workers"), "--workers"),
            "--max-inflight" => {
                config.max_inflight = parse_count(&value("--max-inflight"), "--max-inflight")
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("mcdbr-server: unknown argument `{other}`");
                usage();
            }
        }
    }

    let catalog = match demo::demo_catalog() {
        Ok(catalog) => catalog,
        Err(err) => {
            eprintln!("mcdbr-server: failed to build demo catalog: {err}");
            return ExitCode::FAILURE;
        }
    };
    let backend = mcdbr_dispatch::default_backend();
    eprintln!(
        "mcdbr-server: demo catalog ready ({} customers), backend `{}`, {} scheduler workers, \
         {} in-flight slots",
        demo::DEMO_CUSTOMERS,
        backend.name(),
        config.workers,
        config.max_inflight
    );

    let handle = match Server::start(catalog, backend, config) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("mcdbr-server: failed to start: {err}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr().to_string();
    println!("listening on {addr}");
    if let Some(path) = port_file {
        if let Err(err) = std::fs::write(&path, &addr) {
            eprintln!("mcdbr-server: failed to write port file {path}: {err}");
            return ExitCode::FAILURE;
        }
    }

    // Block until a client asks for shutdown, then drain and report.
    handle.wait_drained();
    let stats = handle.shutdown();
    eprintln!(
        "mcdbr-server: drained; served {} queries over {} connections \
         ({} skeleton hits, {} plan executions, {} tasks dispatched, {} busy rejections)",
        stats.queries_served,
        stats.connections,
        stats.skeleton_hits,
        stats.plan_executions,
        stats.tasks_dispatched,
        stats.busy_rejections
    );
    ExitCode::SUCCESS
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("mcdbr-server: {flag} requires a value");
    usage();
}

fn parse_count(value: &str, flag: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("mcdbr-server: {flag} must be a positive integer, got `{value}`");
            usage();
        }
    }
}
