//! The load generator: N concurrent client connections hammering one
//! server with the demo query, measuring per-query latency percentiles
//! and aggregate throughput.  Shared by the `loadgen` binary and the
//! `server` bench (which records the numbers into `BENCH_server.json`).

use std::net::ToSocketAddrs;
use std::time::Instant;

use mcdbr_dispatch::wire::{WireError, WireResult};
use mcdbr_faults::BackoffPolicy;
use mcdbr_mcdb::MonteCarloQuery;

use crate::client::{QueryReply, ServerClient};

/// One load run's results.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries completed successfully (Busy replies are retried, not
    /// counted).
    pub queries: usize,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Aggregate throughput over the run's wall clock, queries/second.
    pub qps: f64,
    /// Queries whose `QueryStats` reported a shared-cache skeleton hit.
    pub skeleton_hits: usize,
    /// Wire bytes written by all clients over the run (length prefixes
    /// included; handshakes too).  Divide by `queries` for the per-query
    /// average the server bench records.
    pub wire_bytes_sent: u64,
    /// Wire bytes read by all clients over the run.
    pub wire_bytes_received: u64,
}

/// Drive `clients` concurrent connections, each running
/// `queries_per_client` demo queries of `reps` repetitions (distinct
/// master seeds per query, so results differ while the plan skeleton is
/// shared).  Latencies are measured per query, client-side.
pub fn run_load(
    addr: impl ToSocketAddrs + Clone + Send + 'static,
    query: &MonteCarloQuery,
    clients: usize,
    queries_per_client: usize,
    reps: usize,
) -> WireResult<LoadReport> {
    run_load_with(
        addr,
        query,
        clients,
        queries_per_client,
        reps,
        BackoffPolicy::default(),
    )
}

/// [`run_load`] under an explicit Busy-retry [`BackoffPolicy`] — what the
/// `loadgen` binary's `--retry-base-ms` / `--retry-attempts` flags thread
/// through.  Every client uses the same policy; jitter streams decorrelate
/// per query through the master-seed salt.
pub fn run_load_with(
    addr: impl ToSocketAddrs + Clone + Send + 'static,
    query: &MonteCarloQuery,
    clients: usize,
    queries_per_client: usize,
    reps: usize,
    policy: BackoffPolicy,
) -> WireResult<LoadReport> {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client_idx| {
            let addr = addr.clone();
            let query = query.clone();
            std::thread::spawn(move || -> WireResult<(Vec<f64>, usize, u64, u64)> {
                let mut session = ServerClient::connect(addr)?;
                let mut latencies = Vec::with_capacity(queries_per_client);
                let mut hits = 0usize;
                for q in 0..queries_per_client {
                    let seed = (client_idx as u64) << 32 | q as u64;
                    let sent = Instant::now();
                    match session.query_retrying_with(&query, reps, seed, &policy)? {
                        QueryReply::Ok { stats, .. } => {
                            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                            if stats.skeleton_hit {
                                hits += 1;
                            }
                        }
                        QueryReply::Rejected { code, message } => {
                            return Err(WireError::Remote(format!(
                                "query rejected ({code:?}): {message}"
                            )))
                        }
                    }
                }
                Ok((
                    latencies,
                    hits,
                    session.wire_bytes_sent(),
                    session.wire_bytes_received(),
                ))
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    let mut skeleton_hits = 0usize;
    let (mut wire_bytes_sent, mut wire_bytes_received) = (0u64, 0u64);
    for handle in handles {
        let (ls, hits, sent, received) = handle
            .join()
            .map_err(|_| WireError::Remote("load client panicked".into()))??;
        latencies.extend(ls);
        skeleton_hits += hits;
        wire_bytes_sent += sent;
        wire_bytes_received += received;
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let queries = latencies.len();
    Ok(LoadReport {
        queries,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        qps: if elapsed > 0.0 {
            queries as f64 / elapsed
        } else {
            0.0
        },
        skeleton_hits,
        wire_bytes_sent,
        wire_bytes_received,
    })
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 for empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
