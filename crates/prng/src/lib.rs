//! Deterministic pseudorandom number streams.
//!
//! Both MCDB and MCDB-R hinge on one idea (paper §1, §4.1): an uncertain data
//! value is never stored — instead the database stores a *PRNG seed*, and the
//! value observed in Monte Carlo repetition `i` is the `i`-th element of the
//! pseudorandom stream that seed produces.  Tuple bundles carry seeds, not
//! values; the Gibbs Looper "goes to the stream whenever it needs a loss value
//! for the customer".
//!
//! This crate provides:
//!
//! * [`Pcg64`] — a small, fast, permuted-congruential generator (PCG-XSL-RR
//!   128/64) implemented from scratch so that stream semantics are fully
//!   deterministic and owned by this repository (no dependence on `rand`'s
//!   internal stream layout, which may change between versions).
//! * [`RandomStream`] — a position-addressable stream of uniform variates
//!   derived from a seed.  Positions are the paper's "iteration numbers":
//!   element `i` of a stream is the value assigned to DB instance `i` in
//!   naive MCDB, and the Gibbs rejection sampler walks forward through unused
//!   positions (paper §4.2, §6).
//! * [`SeedId`] and [`seed_for`] — stable derivation of per-tuple seeds from a
//!   query-level master seed, so whole experiments are reproducible.
//! * [`StreamKey`] and [`StreamKeyRange`] — seed-independent stream identity
//!   (`(table_tag, row)`) and half-open key ranges with a range partitioner,
//!   the unit sharded execution backends split a block's work by.

pub mod pcg;
pub mod stream;

pub use pcg::Pcg64;
pub use stream::{balanced_chunks, seed_for, RandomStream, SeedId, StreamKey, StreamKeyRange};
