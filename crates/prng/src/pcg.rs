//! A from-scratch PCG-XSL-RR 128/64 generator.
//!
//! The generator is the same family as `rand_pcg::Pcg64` (O'Neill 2014):
//! a 128-bit linear congruential state advanced with a fixed multiplier and a
//! per-instance odd increment, output-permuted with an xor-shift-low and a
//! random rotation.  We implement it locally because the *exact* stream
//! layout is part of MCDB-R's on-"disk" state (TS-seeds record positions into
//! streams), so it must be stable and under this repository's control.

/// Default multiplier from the PCG reference implementation.
const PCG_MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// Default stream increment used when only a 64-bit seed is supplied.
const PCG_DEFAULT_INCREMENT: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;

/// PCG-XSL-RR 128/64 pseudorandom number generator.
///
/// Produces a deterministic sequence of `u64` values from a seed.  Cloning a
/// generator clones its position in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Create a generator from a 64-bit seed using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Create a generator from a seed and a stream selector.  Different
    /// streams with the same seed produce statistically independent output.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        Self::with_expanded_seed(Self::expand_seed(seed), stream)
    }

    /// SplitMix-style expansion of a 64-bit seed into the 128-bit initial
    /// state, mirroring how rand_core's SeedableRng fills wider seeds.
    ///
    /// Exposed separately because the expansion depends only on the seed:
    /// a position-addressable stream derives one generator *per position*
    /// (`stream` = position) from one fixed seed, and hoisting this out of
    /// the per-position loop is a pure win with identical output bits.
    pub fn expand_seed(seed: u64) -> u128 {
        let s0 = splitmix64(seed);
        let s1 = splitmix64(s0 ^ 0x9e37_79b9_7f4a_7c15);
        ((s0 as u128) << 64) | s1 as u128
    }

    /// [`Pcg64::with_stream`] with the seed expansion precomputed by
    /// [`Pcg64::expand_seed`].  Bit-identical to the two-argument form.
    pub fn with_expanded_seed(init_state: u128, stream: u64) -> Self {
        let t0 = splitmix64(stream.wrapping_add(0xda94_2042_e4dd_58b5));
        let t1 = splitmix64(t0 ^ 0xbf58_476d_1ce4_e5b9);

        // The increment must be odd.
        let init_inc = (((t0 as u128) << 64) | t1 as u128) | 1;
        let increment = if stream == 0 {
            PCG_DEFAULT_INCREMENT
        } else {
            init_inc
        };

        let mut pcg = Pcg64 {
            state: 0,
            increment,
        };
        // Standard PCG seeding procedure.
        pcg.step();
        pcg.state = pcg.state.wrapping_add(init_state);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.increment);
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        output_xsl_rr(self.state)
    }

    /// Next uniform variate in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits so every representable value is equally likely
    /// and `1.0` can never be returned (important for inverse-CDF sampling).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Next uniform variate in the open interval `(0, 1)`.
    ///
    /// Never returns 0.0 or 1.0, which keeps `ln(u)` and `Φ⁻¹(u)` finite.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniformly distributed integer in `[0, bound)` using Lemire's
    /// multiply-shift rejection method (unbiased).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

#[inline]
fn output_xsl_rr(state: u128) -> u64 {
    let rot = (state >> 122) as u32;
    let xored = ((state >> 64) as u64) ^ (state as u64);
    xored.rotate_right(rot)
}

/// SplitMix64 — used only for seed expansion.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg64::with_stream(7, 1);
        let mut b = Pcg64::with_stream(7, 2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Pcg64::new(123);
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut g = Pcg64::new(9);
        for _ in 0..10_000 {
            let u = g.next_f64_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut g = Pcg64::new(2024);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let u = g.next_f64();
            sum += u;
            sumsq += u * u;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var = {var}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut g = Pcg64::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = g.next_below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // expected 10_000 each; allow generous slack
            assert!((8_500..11_500).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg64::new(1).next_below(0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = Pcg64::new(77);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn serial_correlation_is_low() {
        // A weak but useful smoke test of output quality: lag-1 autocorrelation
        // of uniforms should be close to zero.
        let mut g = Pcg64::new(31337);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n - 1 {
            num += (xs[i] - mean) * (xs[i + 1] - mean);
        }
        for x in &xs {
            den += (x - mean) * (x - mean);
        }
        let rho = num / den;
        assert!(rho.abs() < 0.02, "lag-1 autocorrelation = {rho}");
    }
}
