//! Position-addressable random streams.
//!
//! Paper §4.1: "There is a data stream associated with every uncertain data
//! value (or correlated set of uncertain data values) in the database. ...
//! Repeated execution of the Normal VG function, parameterized with the
//! customer's mean loss value m, produces a stream of realized loss values
//! for the customer."  The stream is addressed by *position*: in naive MCDB
//! the first `n` positions map to the `n` Monte Carlo repetitions; in MCDB-R
//! the Gibbs rejection sampler consumes positions monotonically and the
//! TS-seed records which position is currently assigned to each DB version.
//!
//! [`RandomStream`] produces the *uniform* variates at each position; the VG
//! functions in `mcdbr-vg` transform those uniforms into draws from the
//! modelled distribution.  A single stream position may consume several
//! uniforms (e.g. a rejection-based Gamma sampler), so the stream hands out a
//! fresh, deterministic sub-generator per position rather than a single
//! number: position `i` of stream `s` always yields the same sub-generator
//! regardless of the order or number of times positions are accessed.  This
//! random-access property is what lets MCDB-R clone DB versions by copying
//! *positions* instead of values (paper §4.2, Fig. 1) and lets replenishment
//! runs re-create exactly the values already assigned (paper §9).

use crate::pcg::Pcg64;

/// Identifier of a random stream (the paper's "PRNG seed" / TS-seed handle's
/// underlying seed).  Stable across runs for a fixed master seed.
pub type SeedId = u64;

/// Seed-independent identity of a random stream: which uncertain table it
/// belongs to (`table_tag`) and which parameter-table row it instantiates
/// (`row`).
///
/// A concrete [`SeedId`] is a function of `(master_seed, table_tag, row)` —
/// see [`seed_for`] — so the same `StreamKey` names "the same stream" across
/// different master seeds.  This is what lets a seed-independent plan
/// skeleton be shared between sessions that differ only in their master seed:
/// lineage is recorded per key, and [`StreamKey::bind`] re-derives the
/// concrete seeds for any master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamKey {
    /// Tag of the uncertain table the stream belongs to (the
    /// `RandomTableSpec::table_tag` mixed into seed derivation).
    pub table_tag: u64,
    /// Index of the parameter-table row the stream instantiates.
    pub row: u64,
}

impl StreamKey {
    /// The smallest stream key in `(table_tag, row)` order — the canonical
    /// lower bound of the whole key space, and the start of the first range
    /// in any [`StreamKeyRange::partition`].
    pub const MIN: StreamKey = StreamKey {
        table_tag: 0,
        row: 0,
    };

    /// Create a stream key.
    pub fn new(table_tag: u64, row: u64) -> Self {
        StreamKey { table_tag, row }
    }

    /// The concrete stream seed this key denotes under `master_seed`
    /// (exactly [`seed_for`]`(master_seed, self.table_tag, self.row)`).
    pub fn bind(&self, master_seed: u64) -> SeedId {
        seed_for(master_seed, self.table_tag, self.row)
    }

    /// Append this key's canonical 16-byte wire encoding (little-endian
    /// `table_tag` then `row`) to `out` — the codec a multi-process shard
    /// dispatcher ships key ranges with.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.table_tag.to_le_bytes());
        out.extend_from_slice(&self.row.to_le_bytes());
    }

    /// Decode a key from `buf` at `*pos`, advancing `*pos` past the 16
    /// bytes consumed.  Returns `None` when the buffer is too short (the
    /// caller turns that into its own typed truncation error).
    pub fn decode_wire(buf: &[u8], pos: &mut usize) -> Option<StreamKey> {
        let bytes = buf.get(*pos..*pos + 16)?;
        *pos += 16;
        Some(StreamKey {
            table_tag: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            row: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        })
    }
}

impl std::fmt::Display for StreamKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(table {}, row {})", self.table_tag, self.row)
    }
}

/// Split `n` items into `min(parts, n)` contiguous chunk lengths differing
/// by at most one (earlier chunks take the extra) — the one balancing rule
/// every shard partitioner shares, whether the items are stream keys
/// ([`StreamKeyRange::partition`]) or aggregate repetition ranges.  Returns
/// an empty vector when `n == 0`.
pub fn balanced_chunks(n: usize, parts: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let (base, rem) = (n / parts, n % parts);
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

/// A half-open range of stream keys, `[start, end)` in `(table_tag, row)`
/// order — the unit a sharded execution backend partitions a block's work
/// by.
///
/// `end == None` means "unbounded above"; the last range of every
/// [`StreamKeyRange::partition`] is unbounded, so a set of partition ranges
/// always covers the *entire* key space.  That makes a shard task
/// self-describing: given a plan skeleton, a master seed, and its range, a
/// worker can decide membership for any stream (or any bundle, by the
/// bundle's smallest key) without consulting the partitioner again — the
/// property that lets the same `(skeleton, seed, range)` triple be shipped
/// to another thread today and another process tomorrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKeyRange {
    /// Inclusive lower bound.
    pub start: StreamKey,
    /// Exclusive upper bound; `None` = unbounded.
    pub end: Option<StreamKey>,
}

impl StreamKeyRange {
    /// The range covering the whole key space, `[MIN, ∞)`.
    pub fn all() -> Self {
        StreamKeyRange {
            start: StreamKey::MIN,
            end: None,
        }
    }

    /// Whether `key` falls inside this range.
    pub fn contains(&self, key: StreamKey) -> bool {
        key >= self.start
            && match self.end {
                Some(end) => key < end,
                None => true,
            }
    }

    /// Partition a **sorted, deduplicated** slice of keys into at most
    /// `parts` contiguous ranges that jointly cover the entire key space:
    /// the first range starts at [`StreamKey::MIN`], the last is unbounded,
    /// and consecutive ranges meet exactly (no gaps, no overlap), so every
    /// possible key — listed or not — belongs to exactly one range.
    ///
    /// The partition is balanced: exactly `min(parts, keys.len())` ranges
    /// come back (never fewer), differing by at most one key, so a caller
    /// asking for `n` shards over at least `n` keys gets `n` shards.  With no
    /// keys, or `parts <= 1`, the single all-covering range is returned.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not strictly increasing — range boundaries are
    /// drawn *between* keys, which only makes sense for sorted input.
    pub fn partition(keys: &[StreamKey], parts: usize) -> Vec<StreamKeyRange> {
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "StreamKeyRange::partition requires strictly increasing keys"
        );
        let lens = balanced_chunks(keys.len(), parts);
        if lens.len() <= 1 {
            return vec![StreamKeyRange::all()];
        }
        // Boundaries are the first key of every chunk after the first; each
        // range [b_i, b_{i+1}) then holds exactly chunk i's keys.
        let mut ranges = Vec::with_capacity(lens.len());
        let mut start = StreamKey::MIN;
        let mut next = 0usize;
        for &len in &lens[..lens.len() - 1] {
            next += len;
            let bound = keys[next];
            ranges.push(StreamKeyRange {
                start,
                end: Some(bound),
            });
            start = bound;
        }
        ranges.push(StreamKeyRange { start, end: None });
        ranges
    }
    /// Append this range's wire encoding to `out`: the start key, then a
    /// bound flag (`1` = bounded) optionally followed by the end key.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        self.start.encode_wire(out);
        match self.end {
            Some(end) => {
                out.push(1);
                end.encode_wire(out);
            }
            None => out.push(0),
        }
    }

    /// Decode a range from `buf` at `*pos`, advancing `*pos`.  Returns
    /// `None` on truncation or an invalid bound flag.
    pub fn decode_wire(buf: &[u8], pos: &mut usize) -> Option<StreamKeyRange> {
        let start = StreamKey::decode_wire(buf, pos)?;
        let flag = *buf.get(*pos)?;
        *pos += 1;
        let end = match flag {
            0 => None,
            1 => Some(StreamKey::decode_wire(buf, pos)?),
            _ => return None,
        };
        Some(StreamKeyRange { start, end })
    }
}

impl std::fmt::Display for StreamKeyRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.end {
            Some(end) => write!(f, "[{} .. {})", self.start, end),
            None => write!(f, "[{} .. ∞)", self.start),
        }
    }
}

/// Derive the seed for stream `index` of table `table_tag` from a master seed.
///
/// Experiments use one master seed; every uncertain tuple derives its own
/// stream seed from `(master, table_tag, index)` so results are reproducible
/// and streams are pairwise independent for all practical purposes.
pub fn seed_for(master: u64, table_tag: u64, index: u64) -> SeedId {
    // SplitMix-style mixing of the three components.
    let mut x = master ^ table_tag.rotate_left(21) ^ index.rotate_left(42);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A position-addressable stream of uniform randomness derived from one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomStream {
    seed: SeedId,
    /// The seed's SplitMix expansion ([`Pcg64::expand_seed`]), computed once
    /// at construction: every position's sub-generator shares it, so batched
    /// generation loops skip two mixing rounds per position.
    expanded: u128,
}

impl RandomStream {
    /// Create the stream for a seed.
    pub fn new(seed: SeedId) -> Self {
        RandomStream {
            seed,
            expanded: Pcg64::expand_seed(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> SeedId {
        self.seed
    }

    /// A deterministic sub-generator for stream position `pos`.
    ///
    /// The same `(seed, pos)` pair always produces an identical generator, so
    /// VG functions can re-derive any previously generated value — the
    /// property replenishment runs rely on.
    pub fn generator_at(&self, pos: u64) -> Pcg64 {
        Pcg64::with_expanded_seed(self.expanded, pos.wrapping_add(1))
    }

    /// The single uniform variate at position `pos` (convenience for VG
    /// functions that need exactly one uniform per value, e.g. inverse-CDF
    /// Normal sampling).
    pub fn uniform_at(&self, pos: u64) -> f64 {
        self.generator_at(pos).next_f64_open()
    }

    /// Materialize the uniforms for positions `lo..hi` (used when an
    /// Instantiate operator attaches a block of stream values to a Gibbs
    /// tuple; paper §5: "The number of stream elements to instantiate in a
    /// Gibbs tuple is chosen to trade off...").
    pub fn uniform_block(&self, lo: u64, hi: u64) -> Vec<f64> {
        (lo..hi).map(|p| self.uniform_at(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_random_access() {
        let s = RandomStream::new(99);
        let forward: Vec<f64> = (0..10).map(|p| s.uniform_at(p)).collect();
        let backward: Vec<f64> = (0..10).rev().map(|p| s.uniform_at(p)).collect();
        let backward_reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn repeated_access_is_stable() {
        let s = RandomStream::new(7);
        assert_eq!(s.uniform_at(5), s.uniform_at(5));
        let mut g1 = s.generator_at(3);
        let mut g2 = s.generator_at(3);
        for _ in 0..20 {
            assert_eq!(g1.next_u64(), g2.next_u64());
        }
    }

    #[test]
    fn different_positions_differ() {
        let s = RandomStream::new(1);
        let a = s.uniform_at(0);
        let b = s.uniform_at(1);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomStream::new(10).uniform_at(0);
        let b = RandomStream::new(11).uniform_at(0);
        assert_ne!(a, b);
    }

    #[test]
    fn block_matches_pointwise() {
        let s = RandomStream::new(123);
        let block = s.uniform_block(10, 20);
        assert_eq!(block.len(), 10);
        for (i, v) in block.iter().enumerate() {
            assert_eq!(*v, s.uniform_at(10 + i as u64));
        }
    }

    #[test]
    fn stream_uniforms_look_uniform() {
        let s = RandomStream::new(2025);
        let n = 50_000u64;
        let mean: f64 = (0..n).map(|p| s.uniform_at(p)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn seed_for_is_deterministic_and_spread_out() {
        let a = seed_for(42, 1, 0);
        let b = seed_for(42, 1, 0);
        assert_eq!(a, b);
        // Different indices should essentially never collide.
        let mut seeds: Vec<SeedId> = (0..1000).map(|i| seed_for(42, 1, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
        // Different tables and masters change the seed too.
        assert_ne!(seed_for(42, 1, 5), seed_for(42, 2, 5));
        assert_ne!(seed_for(42, 1, 5), seed_for(43, 1, 5));
    }

    #[test]
    fn partition_covers_the_key_space_disjointly() {
        let keys: Vec<StreamKey> = (0..10).map(|r| StreamKey::new(1, r)).collect();
        for parts in [1usize, 2, 3, 7, 10, 25] {
            let ranges = StreamKeyRange::partition(&keys, parts);
            // Balanced: exactly min(parts, len) ranges, sizes within one key.
            assert_eq!(ranges.len(), parts.clamp(1, keys.len()));
            let sizes: Vec<usize> = ranges
                .iter()
                .map(|r| keys.iter().filter(|&&k| r.contains(k)).count())
                .collect();
            assert!(sizes.iter().all(|&s| s >= 1));
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
            // First range starts at MIN, last is unbounded, consecutive
            // ranges meet exactly.
            assert_eq!(ranges.first().unwrap().start, StreamKey::MIN);
            assert_eq!(ranges.last().unwrap().end, None);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, Some(w[1].start));
            }
            // Every listed key — and keys *between* listed keys — belongs to
            // exactly one range.
            for key in keys.iter().copied().chain([
                StreamKey::MIN,
                StreamKey::new(0, 999),
                StreamKey::new(1, 4),
                StreamKey::new(99, 0),
            ]) {
                let owners = ranges.iter().filter(|r| r.contains(key)).count();
                assert_eq!(owners, 1, "key {key} owned by {owners} ranges");
            }
            // Ranges are served in ascending key order.
            let mut seen = Vec::new();
            for r in &ranges {
                seen.extend(keys.iter().copied().filter(|&k| r.contains(k)));
            }
            assert_eq!(seen, keys);
        }
    }

    #[test]
    fn partition_handles_empty_and_tiny_inputs() {
        assert_eq!(
            StreamKeyRange::partition(&[], 4),
            vec![StreamKeyRange::all()]
        );
        let one = [StreamKey::new(2, 5)];
        assert_eq!(
            StreamKeyRange::partition(&one, 4),
            vec![StreamKeyRange::all()]
        );
        assert_eq!(
            StreamKeyRange::partition(&one, 0),
            vec![StreamKeyRange::all()]
        );
        assert!(StreamKeyRange::all().contains(StreamKey::MIN));
        assert!(StreamKeyRange::all().contains(StreamKey::new(u64::MAX, u64::MAX)));
        assert_eq!(StreamKeyRange::all().to_string(), "[(table 0, row 0) .. ∞)");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn partition_rejects_unsorted_keys() {
        let keys = [StreamKey::new(1, 5), StreamKey::new(1, 2)];
        let _ = StreamKeyRange::partition(&keys, 2);
    }

    #[test]
    fn ranges_span_table_tags() {
        // A multi-table plan's keys sort by (table_tag, row); boundaries may
        // fall between tables and membership must respect the full ordering.
        let keys = [
            StreamKey::new(1, 0),
            StreamKey::new(1, 1),
            StreamKey::new(2, 0),
            StreamKey::new(2, 1),
        ];
        let ranges = StreamKeyRange::partition(&keys, 2);
        assert_eq!(ranges.len(), 2);
        assert!(ranges[0].contains(StreamKey::new(1, 1)));
        assert!(ranges[1].contains(StreamKey::new(2, 0)));
        assert!(!ranges[0].contains(StreamKey::new(2, 0)));
        assert_eq!(
            ranges[0].to_string(),
            "[(table 0, row 0) .. (table 2, row 0))"
        );
    }

    #[test]
    fn wire_codecs_round_trip_and_reject_truncation() {
        let mut buf = Vec::new();
        let key = StreamKey::new(0xDEAD_BEEF, u64::MAX);
        key.encode_wire(&mut buf);
        assert_eq!(buf.len(), 16);
        let mut pos = 0;
        assert_eq!(StreamKey::decode_wire(&buf, &mut pos), Some(key));
        assert_eq!(pos, 16);
        // Truncated input: None, position untouched past the failure.
        let mut pos = 0;
        assert_eq!(StreamKey::decode_wire(&buf[..15], &mut pos), None);

        for range in [
            StreamKeyRange::all(),
            StreamKeyRange {
                start: StreamKey::new(1, 2),
                end: Some(StreamKey::new(3, 0)),
            },
        ] {
            let mut buf = Vec::new();
            range.encode_wire(&mut buf);
            let mut pos = 0;
            assert_eq!(StreamKeyRange::decode_wire(&buf, &mut pos), Some(range));
            assert_eq!(pos, buf.len());
            // Truncation anywhere inside the encoding is rejected.
            for cut in 0..buf.len() {
                let mut pos = 0;
                assert_eq!(StreamKeyRange::decode_wire(&buf[..cut], &mut pos), None);
            }
        }
        // An invalid bound flag is rejected too.
        let mut buf = Vec::new();
        StreamKey::MIN.encode_wire(&mut buf);
        buf.push(7);
        let mut pos = 0;
        assert_eq!(StreamKeyRange::decode_wire(&buf, &mut pos), None);
    }

    #[test]
    fn stream_key_bind_matches_seed_for() {
        let key = StreamKey::new(3, 17);
        assert_eq!(key.bind(42), seed_for(42, 3, 17));
        assert_eq!(key.bind(43), seed_for(43, 3, 17));
        assert_ne!(key.bind(42), key.bind(43));
        assert_eq!(key.to_string(), "(table 3, row 17)");
        assert!(StreamKey::new(1, 0) < StreamKey::new(1, 1));
    }
}
