//! Position-addressable random streams.
//!
//! Paper §4.1: "There is a data stream associated with every uncertain data
//! value (or correlated set of uncertain data values) in the database. ...
//! Repeated execution of the Normal VG function, parameterized with the
//! customer's mean loss value m, produces a stream of realized loss values
//! for the customer."  The stream is addressed by *position*: in naive MCDB
//! the first `n` positions map to the `n` Monte Carlo repetitions; in MCDB-R
//! the Gibbs rejection sampler consumes positions monotonically and the
//! TS-seed records which position is currently assigned to each DB version.
//!
//! [`RandomStream`] produces the *uniform* variates at each position; the VG
//! functions in `mcdbr-vg` transform those uniforms into draws from the
//! modelled distribution.  A single stream position may consume several
//! uniforms (e.g. a rejection-based Gamma sampler), so the stream hands out a
//! fresh, deterministic sub-generator per position rather than a single
//! number: position `i` of stream `s` always yields the same sub-generator
//! regardless of the order or number of times positions are accessed.  This
//! random-access property is what lets MCDB-R clone DB versions by copying
//! *positions* instead of values (paper §4.2, Fig. 1) and lets replenishment
//! runs re-create exactly the values already assigned (paper §9).

use crate::pcg::Pcg64;

/// Identifier of a random stream (the paper's "PRNG seed" / TS-seed handle's
/// underlying seed).  Stable across runs for a fixed master seed.
pub type SeedId = u64;

/// Seed-independent identity of a random stream: which uncertain table it
/// belongs to (`table_tag`) and which parameter-table row it instantiates
/// (`row`).
///
/// A concrete [`SeedId`] is a function of `(master_seed, table_tag, row)` —
/// see [`seed_for`] — so the same `StreamKey` names "the same stream" across
/// different master seeds.  This is what lets a seed-independent plan
/// skeleton be shared between sessions that differ only in their master seed:
/// lineage is recorded per key, and [`StreamKey::bind`] re-derives the
/// concrete seeds for any master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamKey {
    /// Tag of the uncertain table the stream belongs to (the
    /// `RandomTableSpec::table_tag` mixed into seed derivation).
    pub table_tag: u64,
    /// Index of the parameter-table row the stream instantiates.
    pub row: u64,
}

impl StreamKey {
    /// Create a stream key.
    pub fn new(table_tag: u64, row: u64) -> Self {
        StreamKey { table_tag, row }
    }

    /// The concrete stream seed this key denotes under `master_seed`
    /// (exactly [`seed_for`]`(master_seed, self.table_tag, self.row)`).
    pub fn bind(&self, master_seed: u64) -> SeedId {
        seed_for(master_seed, self.table_tag, self.row)
    }
}

impl std::fmt::Display for StreamKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(table {}, row {})", self.table_tag, self.row)
    }
}

/// Derive the seed for stream `index` of table `table_tag` from a master seed.
///
/// Experiments use one master seed; every uncertain tuple derives its own
/// stream seed from `(master, table_tag, index)` so results are reproducible
/// and streams are pairwise independent for all practical purposes.
pub fn seed_for(master: u64, table_tag: u64, index: u64) -> SeedId {
    // SplitMix-style mixing of the three components.
    let mut x = master ^ table_tag.rotate_left(21) ^ index.rotate_left(42);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A position-addressable stream of uniform randomness derived from one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomStream {
    seed: SeedId,
}

impl RandomStream {
    /// Create the stream for a seed.
    pub fn new(seed: SeedId) -> Self {
        RandomStream { seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> SeedId {
        self.seed
    }

    /// A deterministic sub-generator for stream position `pos`.
    ///
    /// The same `(seed, pos)` pair always produces an identical generator, so
    /// VG functions can re-derive any previously generated value — the
    /// property replenishment runs rely on.
    pub fn generator_at(&self, pos: u64) -> Pcg64 {
        Pcg64::with_stream(self.seed, pos.wrapping_add(1))
    }

    /// The single uniform variate at position `pos` (convenience for VG
    /// functions that need exactly one uniform per value, e.g. inverse-CDF
    /// Normal sampling).
    pub fn uniform_at(&self, pos: u64) -> f64 {
        self.generator_at(pos).next_f64_open()
    }

    /// Materialize the uniforms for positions `lo..hi` (used when an
    /// Instantiate operator attaches a block of stream values to a Gibbs
    /// tuple; paper §5: "The number of stream elements to instantiate in a
    /// Gibbs tuple is chosen to trade off...").
    pub fn uniform_block(&self, lo: u64, hi: u64) -> Vec<f64> {
        (lo..hi).map(|p| self.uniform_at(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_random_access() {
        let s = RandomStream::new(99);
        let forward: Vec<f64> = (0..10).map(|p| s.uniform_at(p)).collect();
        let backward: Vec<f64> = (0..10).rev().map(|p| s.uniform_at(p)).collect();
        let backward_reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn repeated_access_is_stable() {
        let s = RandomStream::new(7);
        assert_eq!(s.uniform_at(5), s.uniform_at(5));
        let mut g1 = s.generator_at(3);
        let mut g2 = s.generator_at(3);
        for _ in 0..20 {
            assert_eq!(g1.next_u64(), g2.next_u64());
        }
    }

    #[test]
    fn different_positions_differ() {
        let s = RandomStream::new(1);
        let a = s.uniform_at(0);
        let b = s.uniform_at(1);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomStream::new(10).uniform_at(0);
        let b = RandomStream::new(11).uniform_at(0);
        assert_ne!(a, b);
    }

    #[test]
    fn block_matches_pointwise() {
        let s = RandomStream::new(123);
        let block = s.uniform_block(10, 20);
        assert_eq!(block.len(), 10);
        for (i, v) in block.iter().enumerate() {
            assert_eq!(*v, s.uniform_at(10 + i as u64));
        }
    }

    #[test]
    fn stream_uniforms_look_uniform() {
        let s = RandomStream::new(2025);
        let n = 50_000u64;
        let mean: f64 = (0..n).map(|p| s.uniform_at(p)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn seed_for_is_deterministic_and_spread_out() {
        let a = seed_for(42, 1, 0);
        let b = seed_for(42, 1, 0);
        assert_eq!(a, b);
        // Different indices should essentially never collide.
        let mut seeds: Vec<SeedId> = (0..1000).map(|i| seed_for(42, 1, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
        // Different tables and masters change the seed too.
        assert_ne!(seed_for(42, 1, 5), seed_for(42, 2, 5));
        assert_ne!(seed_for(42, 1, 5), seed_for(43, 1, 5));
    }

    #[test]
    fn stream_key_bind_matches_seed_for() {
        let key = StreamKey::new(3, 17);
        assert_eq!(key.bind(42), seed_for(42, 3, 17));
        assert_eq!(key.bind(43), seed_for(43, 3, 17));
        assert_ne!(key.bind(42), key.bind(43));
        assert_eq!(key.to_string(), "(table 3, row 17)");
        assert!(StreamKey::new(1, 0) < StreamKey::new(1, 1));
    }
}
