//! An offline stand-in for the parts of the [criterion](https://crates.io/crates/criterion)
//! 0.5 API that the `mcdbr-bench` benches use.
//!
//! The build environment for this repository cannot reach a crates registry,
//! so the real criterion crate cannot be fetched.  This crate keeps the bench
//! sources identical to what they would be with the real dependency — swap
//! the workspace `criterion` entry for `criterion = "0.5"` and everything
//! recompiles unchanged — while providing a serviceable measurement loop:
//! per-benchmark warm-up, a configurable number of timed samples, and a
//! min / median / max wall-clock report on stdout (the median is the central
//! estimate — robust to descheduling outliers on shared machines).
//!
//! Behavioural notes:
//!
//! * `cargo bench` runs the full sample loop.
//! * `cargo test` (which builds `harness = false` bench targets in test mode
//!   and passes `--test`) runs each benchmark exactly once, so the tier-1
//!   test suite stays fast.
//! * Unknown CLI flags and filters are accepted and ignored, matching how
//!   cargo invokes bench binaries.
//! * Beyond the stdout report, every bench binary writes a machine-readable
//!   `BENCH_<name>.json` (timings, derived values/sec and MiB/sec, plus any
//!   [`record_metric`] scalars such as allocation counts) into
//!   `$BENCH_JSON_DIR` (default `target`) — the stand-in's replacement for
//!   criterion's `target/criterion` estimate tree.

use std::fmt;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark, captured for the machine-readable report.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    samples: usize,
    mean_ns: u128,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    throughput: Option<Throughput>,
}

/// A caller-reported scalar attached to the report (e.g. allocations per
/// block, counted outside the timing loop).
#[derive(Debug, Clone)]
struct Metric {
    benchmark: String,
    name: String,
    value: f64,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());
static METRICS: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

/// Attach a named scalar metric to the JSON report, keyed by a benchmark
/// (or workload) id — for quantities measured outside the timing loop,
/// like an allocation census.
pub fn record_metric(benchmark: impl Into<String>, name: impl Into<String>, value: f64) {
    METRICS.lock().unwrap().push(Metric {
        benchmark: benchmark.into(),
        name: name.into(),
        value,
    });
}

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration work, enabling throughput reporting
/// (values/sec for [`Throughput::Elements`], MB/sec for
/// [`Throughput::Bytes`]) alongside the wall-clock numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark, e.g. `block_size/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone (criterion prefixes the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    num_samples: usize,
}

impl Bencher {
    /// Time `routine`, running the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches the first sample would otherwise pay for).
        black_box(routine());
        for _ in 0..self.num_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
    }
}

/// The top-level benchmark manager.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, None, &id.to_string(), 10, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration work of subsequent benchmarks in this
    /// group; the report then includes values/sec (elements) or MB/sec
    /// (bytes) computed from the median sample.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.to_string(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.to_string(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (report separator; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &criterion.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }
    let num_samples = if criterion.test_mode { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        num_samples,
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    // The central estimate is the median, not the mean: bench machines
    // share cores, and one descheduled sample can be an order of magnitude
    // slower than the rest — the median ignores it, the mean does not.
    let median = {
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };
    RECORDS.lock().unwrap().push(Record {
        id: full_id.clone(),
        samples: samples.len(),
        mean_ns: mean.as_nanos(),
        median_ns: median.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        throughput,
    });
    if criterion.test_mode {
        println!("test {full_id} ... ok");
        return;
    }
    let thrpt = throughput
        .map(|t| format!("  thrpt: {}", fmt_throughput(t, median)))
        .unwrap_or_default();
    println!(
        "{full_id:<40} time: [{} {} {}]  ({} samples){thrpt}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        samples.len()
    );
}

/// Render a throughput figure from the declared per-iteration work and the
/// median per-iteration duration.
fn fmt_throughput(throughput: Throughput, median: Duration) -> String {
    let secs = median.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Elements(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e6 {
                format!("{:.3} Melem/s", rate / 1e6)
            } else if rate >= 1e3 {
                format!("{:.3} Kelem/s", rate / 1e3)
            } else {
                format!("{rate:.3} elem/s")
            }
        }
        Throughput::Bytes(n) => {
            let rate = n as f64 / secs / (1024.0 * 1024.0);
            if rate >= 1024.0 {
                format!("{:.3} GiB/s", rate / 1024.0)
            } else {
                format!("{rate:.3} MiB/s")
            }
        }
    }
}

/// Write the machine-readable benchmark report.  `criterion_main!` calls
/// this after every group has run: one `BENCH_<bench-name>.json` per bench
/// binary, in `$BENCH_JSON_DIR` (default `target`), holding every timed
/// result (with derived values/sec and MiB/sec) plus the metrics reported
/// via [`record_metric`].
pub fn write_json_report() {
    let arg0 = std::env::args().next().unwrap_or_default();
    let name = bench_stem(&arg0);
    let records = RECORDS.lock().unwrap().clone();
    let metrics = METRICS.lock().unwrap().clone();
    if records.is_empty() && metrics.is_empty() {
        return;
    }
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "target".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let json = render_json(&name, &records, &metrics);
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        eprintln!("could not write {}: {e}", path.display());
        return;
    }
    println!("bench report: {}", path.display());
}

/// The bench binary's logical name: the executable stem minus the `-<hash>`
/// disambiguator cargo appends under `target/*/deps/`.
fn bench_stem(arg0: &str) -> String {
    let stem = std::path::Path::new(arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

fn render_json(name: &str, records: &[Record], metrics: &[Metric]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": {},\n", json_str(name)));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let median_secs = (r.median_ns as f64 / 1e9).max(1e-12);
        let mut extra = String::new();
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                extra = format!(
                    ", \"elements_per_iter\": {}, \"elements_per_sec\": {}",
                    n,
                    json_f64(n as f64 / median_secs)
                );
            }
            Some(Throughput::Bytes(n)) => {
                extra = format!(
                    ", \"bytes_per_iter\": {}, \"mib_per_sec\": {}",
                    n,
                    json_f64(n as f64 / median_secs / (1024.0 * 1024.0))
                );
            }
            None => {}
        }
        out.push_str(&format!(
            "    {{\"id\": {}, \"samples\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}{extra}}}{}\n",
            json_str(&r.id),
            r.samples,
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"benchmark\": {}, \"name\": {}, \"value\": {}}}{}\n",
            json_str(&m.benchmark),
            json_str(&m.name),
            json_f64(m.value),
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity literals; clamp them to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, mirroring criterion's macro.  After
/// every group has run, the machine-readable `BENCH_<name>.json` report is
/// written (see [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            num_samples: 3,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.samples.len(), 3);
        // Warm-up plus three samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains(" s"));
    }

    #[test]
    fn bench_stems_drop_cargo_hashes() {
        assert_eq!(
            bench_stem("target/release/deps/ablation_kernels-0123456789abcdef"),
            "ablation_kernels"
        );
        // Not a 16-hex suffix: keep the stem whole.
        assert_eq!(bench_stem("my-bench"), "my-bench");
        assert_eq!(bench_stem(""), "bench");
    }

    #[test]
    fn json_report_renders_records_and_metrics() {
        let records = vec![
            Record {
                id: "g/fast/256".into(),
                samples: 20,
                mean_ns: 2_400_000,
                median_ns: 2_000_000,
                min_ns: 1_500_000,
                max_ns: 2_500_000,
                throughput: Some(Throughput::Elements(1_000_000)),
            },
            Record {
                id: "g/wire".into(),
                samples: 10,
                mean_ns: 1_200_000,
                median_ns: 1_000_000,
                min_ns: 900_000,
                max_ns: 1_100_000,
                throughput: Some(Throughput::Bytes(1 << 20)),
            },
        ];
        let metrics = vec![Metric {
            benchmark: "g/fast/256".into(),
            name: "allocs_per_block".into(),
            value: 716.0,
        }];
        let json = render_json("demo", &records, &metrics);
        // 1e6 elements at a 2 ms/iter median = 5e8 elements/sec.
        assert!(json.contains("\"elements_per_sec\": 500000000"));
        // 1 MiB at a 1 ms/iter median = 1000 MiB/sec.
        assert!(json.contains("\"mib_per_sec\": 1000"));
        assert!(json.contains("\"median_ns\": 2000000"));
        assert!(json.contains("\"allocs_per_block\""));
        assert!(json.contains("\"bench\": \"demo\""));
        // Exactly one comma-separated results list: no trailing comma.
        assert!(!json.contains(",\n  ]"));
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn throughput_formatting_scales() {
        let ms = Duration::from_millis(1);
        // 1e6 elements in 1 ms = 1e9 elem/s.
        assert_eq!(
            fmt_throughput(Throughput::Elements(1_000_000), ms),
            "1000.000 Melem/s"
        );
        assert_eq!(
            fmt_throughput(Throughput::Elements(500), Duration::from_secs(1)),
            "500.000 elem/s"
        );
        assert_eq!(
            fmt_throughput(Throughput::Elements(5_000), Duration::from_secs(1)),
            "5.000 Kelem/s"
        );
        // 1 MiB in 1 s = 1 MiB/s; 2 GiB in 1 s reports in GiB/s.
        assert_eq!(
            fmt_throughput(Throughput::Bytes(1 << 20), Duration::from_secs(1)),
            "1.000 MiB/s"
        );
        assert_eq!(
            fmt_throughput(Throughput::Bytes(2 << 30), Duration::from_secs(1)),
            "2.000 GiB/s"
        );
    }
}
