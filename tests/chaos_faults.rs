//! Chaos suite: deterministic fault plans (`mcdbr_faults`) against the
//! multi-process dispatch path, eight seeds per fault kind.
//!
//! The contract under test is the robustness tentpole's headline: **faults
//! cost time, never answers**.  Every run below — stalled replies, dropped
//! frames, truncated frames, straggler workers — must terminate within the
//! watchdog bound and produce samples bit-identical to a clean in-process
//! run of the same `(query, seed)`; recovery goes deadline → respawn →
//! bounded retry → circuit breaker → local degradation, and every rung
//! re-derives the same position-addressable streams.  A final scenario
//! drives the *server* deadline path: a query held past its per-query
//! deadline must come back as a typed `Timeout` reply, not a hang and not
//! a corrupt result.
//!
//! Fault plans target worker slot 0 (`worker=0`), so the coordinator's
//! send side stays clean and the blast radius is exactly one slot — which
//! is what makes "always recovers, bit-identically" provable rather than
//! probabilistic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcdbr::dispatch::ProcessBackend;
use mcdbr::exec::{ExecBackend, InProcessBackend, QueryResultSamples};
use mcdbr::mcdb::{McdbEngine, MonteCarloQuery};
use mcdbr::server::client::{QueryReply, ServerClient};
use mcdbr::server::service::{Server, ServerConfig};
use mcdbr::server::testing::GateBackend;
use mcdbr::storage::Catalog;
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
const REPS: usize = 12;
/// Short enough that a stalled reply is reclassified fast (the stall tests
/// wait out three of these per faulted block), long enough that a healthy
/// worker on a loaded CI box never trips it.
const DEADLINE: Duration = Duration::from_millis(1_000);

/// Aborts the whole test process if the scenario outlives `limit` — the
/// "zero hangs" half of the chaos contract.  Dropping it disarms.
struct Watchdog {
    disarm: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(label: &'static str, limit: Duration) -> Watchdog {
        let disarm = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&disarm);
        std::thread::spawn(move || {
            let deadline = Instant::now() + limit;
            while Instant::now() < deadline {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            if !flag.load(Ordering::SeqCst) {
                eprintln!("chaos watchdog: `{label}` still running after {limit:?} — aborting");
                std::process::abort();
            }
        });
        Watchdog { disarm }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.disarm.store(true, Ordering::SeqCst);
    }
}

fn small_catalog() -> Catalog {
    customer_losses_catalog(10, (2.0, 5.0), 13).unwrap()
}

fn reference(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    reps: usize,
    seed: u64,
) -> QueryResultSamples {
    McdbEngine::new()
        .with_backend(Arc::new(InProcessBackend::new()))
        .run_samples(query, catalog, reps, seed)
        .unwrap()
}

fn assert_samples_bit_identical(got: &QueryResultSamples, want: &QueryResultSamples, ctx: &str) {
    assert_eq!(got.group_columns, want.group_columns, "{ctx}");
    assert_eq!(got.groups.len(), want.groups.len(), "{ctx}");
    for ((ka, va), (kb, vb)) in got.groups.iter().zip(&want.groups) {
        assert_eq!(ka, kb, "{ctx}");
        assert!(
            va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{ctx}: samples differ"
        );
    }
}

/// Run every seed through a 2-worker process backend under `spec`,
/// asserting bit-identity against the clean in-process reference, and
/// return the summed recovery counters for kind-specific audits.
fn chaos_matrix(label: &'static str, spec: &dyn Fn(u64) -> String) -> mcdbr::exec::ShardStats {
    chaos_matrix_env(label, spec, &[])
}

/// Like [`chaos_matrix`], but hands every spawned worker the given
/// environment — the disk-tier legs point `MCDBR_DATA_DIR` at a scratch
/// directory so faults land on top of a persistent table store.
fn chaos_matrix_env(
    label: &'static str,
    spec: &dyn Fn(u64) -> String,
    worker_env: &[(&str, String)],
) -> mcdbr::exec::ShardStats {
    let _watchdog = Watchdog::arm(label, Duration::from_secs(240));
    let catalog = small_catalog();
    let query = customer_losses_query(Some(7));
    let mut totals = mcdbr::exec::ShardStats::default();
    for seed in SEEDS {
        let plan = spec(seed);
        let mut backend = ProcessBackend::new(2)
            .with_fault_spec(&plan)
            .unwrap_or_else(|e| panic!("bad plan `{plan}`: {e}"))
            .with_deadline(DEADLINE);
        for (key, value) in worker_env {
            backend = backend.with_worker_env(*key, value.clone());
        }
        let backend = Arc::new(backend);
        let samples = McdbEngine::new()
            .with_backend(backend.clone() as Arc<dyn ExecBackend>)
            .run_samples(&query, &catalog, REPS, seed)
            .unwrap_or_else(|e| panic!("{label}, seed {seed}: query failed: {e}"));
        assert_samples_bit_identical(
            &samples,
            &reference(&query, &catalog, REPS, seed),
            &format!("{label}, seed {seed}"),
        );
        let stats = backend.shard_stats();
        totals.deadline_timeouts += stats.deadline_timeouts;
        totals.task_retries += stats.task_retries;
        totals.worker_respawns += stats.worker_respawns;
        totals.circuit_trips += stats.circuit_trips;
    }
    totals
}

#[test]
fn chaos_stalled_replies_recover_bit_identically_on_every_seed() {
    // Worker 0 stalls every task reply far past the deadline: each seed
    // must ride deadline → respawn → retry → breaker → local degradation.
    let totals = chaos_matrix("stall", &|seed| {
        format!("seed={seed},worker=0,stall=1:30000")
    });
    assert!(totals.deadline_timeouts > 0, "stalls never hit a deadline");
    assert!(totals.worker_respawns > 0, "stalls never forced a respawn");
    assert!(
        totals.circuit_trips > 0,
        "perma-stall never tripped a breaker"
    );
}

#[test]
fn chaos_dropped_frames_recover_bit_identically_on_every_seed() {
    // Worker 0 swallows reply frames (probabilistically, so seeds explore
    // different drop positions): a silent peer is indistinguishable from a
    // stall and must ride the same ladder.
    let totals = chaos_matrix("drop", &|seed| format!("seed={seed},worker=0,drop=0.75"));
    assert!(
        totals.deadline_timeouts + totals.worker_respawns > 0,
        "across 8 seeds at p=0.75, at least one frame must have dropped"
    );
}

#[test]
fn chaos_truncated_frames_recover_bit_identically_on_every_seed() {
    // Worker 0 writes half-frames: the coordinator sees corrupt or
    // truncated streams (crash-class, but *fast* — no deadline wait) and
    // must respawn + re-dispatch without poisoning later conversations.
    let totals = chaos_matrix("partial", &|seed| {
        format!("seed={seed},worker=0,partial=0.75")
    });
    assert!(
        totals.worker_respawns > 0,
        "across 8 seeds at p=0.75, at least one truncation must have crashed a read"
    );
}

#[test]
fn chaos_truncated_frames_over_a_disk_tier_recover_bit_identically() {
    // The same half-frame fault, but now every worker also runs a
    // disk-backed table store (`MCDBR_DATA_DIR`) under a 2-frame page
    // cache: crashes interleave with store writes and reads, and recovery
    // must still be bit-identical.  A worker killed mid-write may leave a
    // torn `store/*.heap` behind; its respawn detects that by checksum and
    // treats the blob as absent — the dedicated torn-store test below pins
    // that path down deterministically.
    let root = std::env::temp_dir().join(format!("mcdbr-chaos-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let totals = chaos_matrix_env(
        "partial+disk",
        &|seed| format!("seed={seed},worker=0,partial=0.75"),
        &[
            ("MCDBR_DATA_DIR", root.display().to_string()),
            ("MCDBR_PAGE_CACHE", "2".to_string()),
        ],
    );
    assert!(
        totals.worker_respawns > 0,
        "across 8 seeds at p=0.75, at least one truncation must have crashed a read"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_torn_store_blobs_are_detected_deleted_and_repaired_via_need_tables() {
    // Crash-recovery over the persistent worker table store: a worker that
    // dies mid-write can leave a half-written `store/*.heap` behind.  A
    // respawned worker must *detect* the tear by record checksum, delete
    // the blob, report the hash as missing in `NeedTables` (a true miss),
    // and serve the re-shipped pages bit-identically — a torn file costs
    // one re-ship, never an answer.  The tear is manufactured (truncate
    // every blob into its record header) so the scenario is deterministic
    // rather than a race against kill timing.
    let _watchdog = Watchdog::arm("torn-store", Duration::from_secs(240));
    let catalog = small_catalog();
    let query = customer_losses_query(Some(7));
    let seed = 21;
    let want = reference(&query, &catalog, REPS, seed);

    let root = std::env::temp_dir().join(format!("mcdbr-chaos-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let backend = Arc::new(
        ProcessBackend::new(2)
            .with_worker_env("MCDBR_DATA_DIR", root.display().to_string())
            .with_deadline(DEADLINE),
    );
    let mut engine = McdbEngine::new().with_backend(Arc::clone(&backend) as Arc<dyn ExecBackend>);

    // Cold run: plans ship table pages and the workers persist each table
    // as a store blob.
    let samples = engine.run_samples(&query, &catalog, REPS, seed).unwrap();
    assert_samples_bit_identical(&samples, &want, "torn-store cold run");

    let store_dir = root.join("store");
    let blobs: Vec<std::path::PathBuf> = std::fs::read_dir(&store_dir)
        .expect("disk-tier workers must create a store directory")
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "heap"))
        .collect();
    assert!(!blobs.is_empty(), "cold run persisted no store blobs");
    let whole: Vec<u64> = blobs
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .collect();

    // Tear every blob mid-record-header: the length/checksum prefix can no
    // longer be read whole, which is exactly what a crash between the
    // record write and its fsync leaves behind.
    for path in &blobs {
        let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        file.set_len(mcdbr::storage::heapfile::SLOT_ALIGN + 6)
            .unwrap();
    }

    // Kill the pool so the next run starts from respawned workers whose
    // only warm state is the (now torn) on-disk store.
    backend.kill_worker(0);
    backend.kill_worker(1);

    let before = backend.shard_stats();
    let samples = engine.run_samples(&query, &catalog, REPS, seed).unwrap();
    assert_samples_bit_identical(&samples, &want, "torn-store recovery run");
    let stats = backend.shard_stats().since(before);
    assert!(
        stats.worker_respawns >= 2,
        "killing the pool must surface as respawns: {stats:?}"
    );

    // The torn blobs were deleted and rewritten whole from the re-shipped
    // pages: same content, same wire encoding, same byte length as the
    // cold run's files.
    for (path, want_len) in blobs.iter().zip(&whole) {
        let got = std::fs::metadata(path)
            .unwrap_or_else(|e| panic!("{} not regenerated: {e}", path.display()))
            .len();
        assert_eq!(
            got,
            *want_len,
            "{}: repaired blob differs from the original",
            path.display()
        );
    }

    drop(engine);
    drop(backend);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_slow_workers_are_latency_only_on_every_seed() {
    // A straggler is not a failure: +10ms per task must never trip
    // deadlines, never respawn, never degrade.
    let totals = chaos_matrix("slow", &|seed| format!("seed={seed},worker=0,slow=1:10"));
    assert_eq!(
        totals.deadline_timeouts, 0,
        "slow workers must not time out"
    );
    assert_eq!(totals.worker_respawns, 0, "slow workers must not respawn");
    assert_eq!(
        totals.circuit_trips, 0,
        "slow workers must not trip breakers"
    );
}

#[test]
fn server_query_past_its_deadline_gets_a_typed_timeout_reply() {
    // A query provably held inside the executor past the per-query
    // deadline must be cancelled at the next block boundary and answered
    // with ReplyCode::Timeout — the client keeps a healthy connection and
    // the admission slot is released.
    let _watchdog = Watchdog::arm("server-deadline", Duration::from_secs(120));
    let catalog = small_catalog();
    let query = customer_losses_query(None);
    let gate = Arc::new(GateBackend::new());
    let deadline = Duration::from_millis(300);
    let handle = Server::start(
        catalog.clone(),
        Arc::clone(&gate) as Arc<dyn ExecBackend>,
        ServerConfig {
            workers: 2,
            max_inflight: 2,
            query_deadline: Some(deadline),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let doomed = std::thread::spawn({
        let query = query.clone();
        move || {
            let mut client = ServerClient::connect(addr).unwrap();
            client.query(&query, REPS, 3).unwrap()
        }
    });
    gate.wait_entered(1);
    // Hold the query inside instantiate_block until the deadline is
    // definitely blown, then release it: the *next* boundary (aggregation
    // entry) observes the expired token.
    std::thread::sleep(deadline + Duration::from_millis(200));
    gate.open();

    match doomed.join().unwrap() {
        QueryReply::Rejected { code, message } => {
            assert_eq!(
                code,
                mcdbr::dispatch::wire::ReplyCode::Timeout,
                "expected a typed timeout, got {code:?}: {message}"
            );
            assert!(
                message.contains("deadline"),
                "timeout reply should say why: {message}"
            );
        }
        QueryReply::Ok { .. } => panic!("a query held past its deadline completed"),
    }

    // The connection stays healthy and the slot was released: a fresh
    // query on a new connection completes (the gate is open now, and the
    // work itself is far quicker than the deadline).
    let mut client = ServerClient::connect(addr).unwrap();
    let QueryReply::Ok { samples, .. } = client.query_retrying(&query, REPS, 4).unwrap() else {
        panic!("post-timeout query rejected");
    };
    assert_samples_bit_identical(
        &samples,
        &reference(&query, &catalog, REPS, 4),
        "post-timeout query",
    );

    let stats = handle.shutdown();
    assert_eq!(stats.query_timeouts, 1, "exactly one query timed out");
    assert_eq!(
        stats.queries_served, 1,
        "the timed-out query is not 'served'"
    );
    assert_eq!(stats.inflight, 0, "the timed-out query's slot must release");
}
