//! Cross-crate integration test: the §2 customer-loss query end to end —
//! parse the query text, run plain MCDB, run MCDB-R tail sampling, and check
//! the two agree with each other and with the analytic answer.

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::mcdb::McdbEngine;
use mcdbr::query::parse_risk_query;
use mcdbr::risk::TailSummary;
use mcdbr::vg::math::std_normal_quantile;
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query};

#[test]
fn section2_query_from_text_to_tail_samples() {
    let catalog = customer_losses_catalog(200, (2.0, 4.0), 13).unwrap();
    let query = customer_losses_query(None);
    let spec = parse_risk_query(
        "SELECT SUM(val) AS totalLoss FROM Losses \
         WITH RESULTDISTRIBUTION MONTECARLO(60) \
         DOMAIN totalLoss >= QUANTILE(0.95)",
    )
    .unwrap();
    let p = spec.domain.as_ref().unwrap().tail_probability();

    // Analytic truth: the sum of 200 Normal(m_i, 1) is Normal(Σ m_i, 200).
    let means = catalog.get("means").unwrap().column_f64("m").unwrap();
    let mu: f64 = means.iter().sum();
    let sd = (200f64).sqrt();
    let true_quantile = mu + sd * std_normal_quantile(1.0 - p);

    // MCDB body estimate.
    let mut engine = McdbEngine::new();
    let dist = engine.run(&query, &catalog, 800, 3).unwrap().remove(0).1;
    assert!((dist.mean() - mu).abs() < 4.0 * sd / (800f64).sqrt() + 1.0);

    // MCDB-R tail estimate.
    let config = TailSamplingConfig::new(p, spec.monte_carlo_samples, 400).with_master_seed(3);
    let tail = GibbsLooper::new(query, config).run(&catalog).unwrap();
    assert_eq!(tail.tail_samples.len(), 60);
    let summary = TailSummary::from_tail_samples(&tail.tail_samples).unwrap();
    // The tail-sampling quantile estimate should be within a few standard
    // errors of the analytic quantile.
    assert!(
        (tail.quantile_estimate - true_quantile).abs() < 0.15 * sd + 3.0,
        "estimate {} vs analytic {true_quantile}",
        tail.quantile_estimate
    );
    // Expected shortfall lies above the VaR.
    assert!(summary.expected_shortfall >= summary.value_at_risk);
    // And the MCDB empirical 0.95-quantile roughly agrees as well.
    let naive_quantile = dist.quantile(0.95).unwrap();
    assert!((naive_quantile - tail.quantile_estimate).abs() < 0.25 * sd + 3.0);
}
