//! Fault injection for `mcdbr-server`: dead clients, dead workers, and
//! shutdown racing in-flight queries.
//!
//! Each scenario is made deterministic with the crate's own instruments —
//! [`GateBackend`] holds a query provably inside the executor while the
//! fault is injected, and [`ProcessBackend::kill_worker`] kills real
//! worker OS processes — so the suite asserts exact outcomes (slot
//! reclaimed, bit-identical recovery, drained-not-dropped) rather than
//! sleeping and hoping.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcdbr::dispatch::wire::{self, Frame};
use mcdbr::dispatch::ProcessBackend;
use mcdbr::exec::{ExecBackend, InProcessBackend, QueryResultSamples};
use mcdbr::mcdb::{McdbEngine, MonteCarloQuery};
use mcdbr::server::client::{QueryReply, ServerClient};
use mcdbr::server::service::{Server, ServerConfig, ServerHandle};
use mcdbr::server::testing::GateBackend;
use mcdbr::storage::Catalog;
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query};

fn small_catalog() -> Catalog {
    customer_losses_catalog(10, (2.0, 5.0), 13).unwrap()
}

fn reference(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    reps: usize,
    seed: u64,
) -> QueryResultSamples {
    McdbEngine::new()
        .with_backend(Arc::new(InProcessBackend::new()))
        .run_samples(query, catalog, reps, seed)
        .unwrap()
}

fn assert_samples_bit_identical(got: &QueryResultSamples, want: &QueryResultSamples, ctx: &str) {
    assert_eq!(got.group_columns, want.group_columns, "{ctx}");
    assert_eq!(got.groups.len(), want.groups.len(), "{ctx}");
    for ((ka, va), (kb, vb)) in got.groups.iter().zip(&want.groups) {
        assert_eq!(ka, kb, "{ctx}");
        assert!(
            va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{ctx}: samples differ"
        );
    }
}

/// A hand-rolled client that can send a query and then *die* without
/// waiting for the reply — the part `ServerClient`'s blocking API can't do.
fn handshake_raw(handle: &ServerHandle) -> TcpStream {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    wire::write_frame(&mut stream, &wire::encode_hello()).unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let (reply, _) = wire::read_frame(&mut reader).unwrap().unwrap();
    assert!(matches!(
        wire::decode_frame(&reply).unwrap(),
        Frame::Hello { .. }
    ));
    stream
}

fn send_query_raw(stream: &mut TcpStream, query: &MonteCarloQuery, reps: u64, seed: u64) {
    let payload = wire::encode_query(
        &query.plan,
        &query.aggregate,
        query.final_predicate.as_ref(),
        &query.group_by,
        reps,
        seed,
    )
    .unwrap();
    wire::write_frame(stream, &payload).unwrap();
    stream.flush().unwrap();
}

#[test]
fn killed_client_mid_query_has_its_slot_reclaimed() {
    // Client A is admitted into the only slot and provably inside the
    // executor when its process "dies" (socket dropped).  The server must
    // finish or abandon the work, fail the response write, and release the
    // slot — client B's next query must be admitted, not Busy forever.
    let catalog = small_catalog();
    let query = customer_losses_query(None);
    let gate = Arc::new(GateBackend::new());
    let handle = Server::start(
        catalog.clone(),
        Arc::clone(&gate) as Arc<dyn ExecBackend>,
        ServerConfig {
            workers: 2,
            max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut doomed = handshake_raw(&handle);
    send_query_raw(&mut doomed, &query, 12, 5);
    gate.wait_entered(1);
    // A holds the slot inside instantiate_block; verify B is turned away...
    let mut b = ServerClient::connect(handle.addr()).unwrap();
    assert!(matches!(
        b.query(&query, 12, 6).unwrap(),
        QueryReply::Rejected {
            code: wire::ReplyCode::Busy,
            ..
        }
    ));
    // ...then kill A while its query is in flight.
    drop(doomed);
    gate.open();

    // B must eventually be admitted: the dead client's slot is reclaimed
    // when the server's response write fails.  (Bounded retry: a leaked
    // slot would spin this to the deadline and fail.)
    let deadline = Instant::now() + Duration::from_secs(30);
    let samples = loop {
        match b.query(&query, 12, 6).unwrap() {
            QueryReply::Ok { samples, .. } => break samples,
            QueryReply::Rejected {
                code: wire::ReplyCode::Busy,
                ..
            } => {
                assert!(
                    Instant::now() < deadline,
                    "slot never reclaimed after client death"
                );
                std::thread::yield_now();
            }
            QueryReply::Rejected { code, message } => {
                panic!("unexpected rejection: {code:?} {message}")
            }
        }
    };
    assert_samples_bit_identical(&samples, &reference(&query, &catalog, 12, 6), "client B");

    let stats = handle.shutdown();
    assert_eq!(stats.inflight, 0, "no slot may leak");
}

#[test]
fn killed_workers_under_server_routed_queries_recover_bit_identically() {
    // The dispatch crate's crash-recovery contract, driven through the
    // server path: kill both worker OS processes between server-routed
    // queries; the next query's tasks hit broken pipes, respawn workers,
    // re-send the plan, re-dispatch — and the samples stay bit-identical.
    let catalog = small_catalog();
    let query = customer_losses_query(Some(7));
    let backend = Arc::new(ProcessBackend::new(2));
    let handle = Server::start(
        catalog.clone(),
        Arc::clone(&backend) as Arc<dyn ExecBackend>,
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = ServerClient::connect(handle.addr()).unwrap();

    for (round, seed) in [1u64, 2, 3].into_iter().enumerate() {
        if round > 0 {
            backend.kill_worker(0);
            if round == 2 {
                backend.kill_worker(1);
            }
        }
        let QueryReply::Ok { samples, .. } = client.query_retrying(&query, 16, seed).unwrap()
        else {
            panic!("round {round} rejected");
        };
        assert_samples_bit_identical(
            &samples,
            &reference(&query, &catalog, 16, seed),
            &format!("round {round}"),
        );
    }
    assert!(
        backend.shard_stats().worker_respawns >= 3,
        "every kill must surface as a respawn: {:?}",
        backend.shard_stats()
    );
    let stats = handle.shutdown();
    assert_eq!(stats.queries_served, 3);
    assert_eq!(stats.inflight, 0);
}

#[test]
fn fault_plan_stalled_worker_under_server_routed_queries_audits_exactly() {
    // Deterministic fault plan instead of kill_worker: worker slot 0
    // perma-stalls every task reply (`stall=1:30000`) while the read
    // deadline is short.  With the retry policy's 2-attempt bound the
    // ladder for the faulted block is fully determined, so the recovery
    // counters can be audited *exactly*, not `>=`:
    //
    //   attempt 0: deadline timeout -> retry (respawn #1)
    //   attempt 1: deadline timeout -> retry (respawn #2)
    //   attempt 2: deadline timeout -> 3rd consecutive failure trips the
    //              breaker, retries exhausted -> slot degrades locally
    //
    // = 3 deadline_timeouts, 2 task_retries, 2 worker_respawns,
    //   1 circuit_trip.  Queries 2 and 3 fall inside the breaker's
    //   cooldown: their slot-0 tasks degrade up front and no counter
    //   moves.  Every query must still be bit-identical to the in-process
    //   reference — degradation re-runs the same ShardTask on the same
    //   position-addressable streams.
    let catalog = small_catalog();
    let query = customer_losses_query(Some(7));
    let backend = Arc::new(
        ProcessBackend::new(2)
            .with_fault_spec("seed=9,worker=0,stall=1:30000")
            .unwrap()
            .with_deadline(Duration::from_millis(2_000)),
    );
    let handle = Server::start(
        catalog.clone(),
        Arc::clone(&backend) as Arc<dyn ExecBackend>,
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = ServerClient::connect(handle.addr()).unwrap();

    for seed in [11u64, 12, 13] {
        let QueryReply::Ok { samples, .. } = client.query_retrying(&query, 16, seed).unwrap()
        else {
            panic!("seed {seed} rejected");
        };
        assert_samples_bit_identical(
            &samples,
            &reference(&query, &catalog, 16, seed),
            &format!("seed {seed}"),
        );
    }

    let stats = backend.shard_stats();
    assert_eq!(
        stats.deadline_timeouts, 3,
        "one timeout per ladder attempt on the faulted block: {stats:?}"
    );
    assert_eq!(
        stats.task_retries, 2,
        "the 2-attempt retry bound is exact: {stats:?}"
    );
    assert_eq!(
        stats.worker_respawns, 2,
        "one respawn per retry (the final give-up reaps without respawning): {stats:?}"
    );
    assert_eq!(
        stats.circuit_trips, 1,
        "the third consecutive failure trips the slot's breaker once: {stats:?}"
    );

    let server_stats = handle.shutdown();
    assert_eq!(server_stats.queries_served, 3);
    assert_eq!(
        server_stats.query_timeouts, 0,
        "degradation is not a timeout"
    );
    assert_eq!(server_stats.inflight, 0);
}

#[test]
fn shutdown_with_a_query_in_flight_drains_it_not_drops_it() {
    // Client A's query is provably inside the executor when client B
    // requests shutdown.  The drain must (1) refuse new queries with a
    // typed ShuttingDown reply — even on connections opened before the
    // drain — (2) let A's query finish and deliver its complete,
    // bit-identical response, and only then (3) let shutdown complete.
    let catalog = small_catalog();
    let query = customer_losses_query(None);
    let gate = Arc::new(GateBackend::new());
    let handle = Server::start(
        catalog.clone(),
        Arc::clone(&gate) as Arc<dyn ExecBackend>,
        ServerConfig {
            workers: 2,
            max_inflight: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // C connects *before* the drain so its connection is live throughout.
    let mut late = ServerClient::connect(addr).unwrap();

    let a = std::thread::spawn({
        let query = query.clone();
        move || {
            let mut client = ServerClient::connect(addr).unwrap();
            client.query(&query, 12, 9).unwrap()
        }
    });
    gate.wait_entered(1);

    // B asks for shutdown while A is mid-query; wait until the server has
    // actually processed the frame so the refusal below is deterministic.
    ServerClient::connect(addr).unwrap().shutdown().unwrap();
    while !handle.is_draining() {
        std::thread::yield_now();
    }

    // A query on the pre-existing connection is refused with a typed,
    // retry-meaningful code — not an abrupt close, not a hang.
    match late.query(&query, 12, 10).unwrap() {
        QueryReply::Rejected { code, .. } => {
            assert_eq!(code, wire::ReplyCode::ShuttingDown)
        }
        QueryReply::Ok { .. } => panic!("admitted a query during drain"),
    }

    // Release A: its full response must arrive despite the drain.
    gate.open();
    let QueryReply::Ok { samples, stats } = a.join().unwrap() else {
        panic!("in-flight query dropped by shutdown");
    };
    assert_samples_bit_identical(
        &samples,
        &reference(&query, &catalog, 12, 9),
        "drained query",
    );
    assert_eq!(stats.plan_executions, 1);

    handle.wait_drained();
    let final_stats = handle.shutdown();
    assert_eq!(
        final_stats.queries_served, 1,
        "exactly the drained query was served"
    );
    assert_eq!(final_stats.inflight, 0);
}
