//! Integration test for experiments E1/E2 at test scale: MCDB-R tail samples
//! on the Appendix D workload cluster around the analytic tail CDF, and the
//! quantile estimates are unbiased within a few standard errors.

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::risk::TailCdfComparison;
use mcdbr::workloads::{TpchConfig, TpchWorkload};

#[test]
fn tail_samples_cluster_around_the_analytic_tail() {
    let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
    let p = 0.01;
    let mut ks_distances = Vec::new();
    let mut rel_errors = Vec::new();
    for run in 0..5u64 {
        let cfg = TailSamplingConfig::new(p, 60, 400)
            .with_m(3)
            .with_block_size(800)
            .with_master_seed(40 + run);
        let result = GibbsLooper::new(w.total_loss_query(), cfg)
            .run(&w.catalog)
            .unwrap();
        let cmp = TailCdfComparison::new(&w.oracle, p, &result.tail_samples).unwrap();
        ks_distances.push(cmp.ks_distance);
        rel_errors.push(cmp.quantile_relative_error());
    }
    // Empirical tail CDFs stay close to the analytic one (Figure 5's visual
    // claim, quantified by the KS distance) ...
    let mean_ks = ks_distances.iter().sum::<f64>() / ks_distances.len() as f64;
    assert!(
        mean_ks < 0.35,
        "mean KS distance {mean_ks}, distances {ks_distances:?}"
    );
    // ... and the quantile estimates are accurate to a few percent of the
    // quantile value (the paper reports ~0.02% at 50x our budget and scale).
    let mean_rel = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
    assert!(mean_rel < 0.05, "mean relative error {mean_rel}");
}

#[test]
fn replenishment_happens_and_does_not_change_correctness() {
    let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
    // A deliberately small block forces replenishment mid-run (§9).
    let cfg = TailSamplingConfig::new(0.02, 30, 300)
        .with_m(3)
        .with_block_size(110)
        .with_master_seed(8);
    let result = GibbsLooper::new(w.total_loss_query(), cfg)
        .run(&w.catalog)
        .unwrap();
    assert!(result.replenishments > 0);
    // The execution session runs deterministic plan work exactly once;
    // replenishments only materialize further stream blocks.
    assert_eq!(result.plan_executions, 1);
    assert_eq!(result.blocks_materialized, 1 + result.replenishments);
    assert!(result
        .tail_samples
        .iter()
        .all(|&s| s >= result.quantile_estimate - 1e-9));
    assert!(result.quantile_estimate > w.oracle.mean);
}
