//! Protocol fuzz for `mcdbr-server` over real sockets.
//!
//! Extends `wire_roundtrip.rs`'s seeded-generator approach (no registry
//! access, so no `proptest`; each case seed is carried in failure
//! messages) from in-memory byte buffers to live TCP connections: random
//! garbage, truncated frames, bit-flipped query payloads, oversized length
//! prefixes, and magic/version handshake mismatches must each yield a
//! typed error reply or a clean disconnect — never a panic, and never a
//! wedged accept loop.  After every hostile connection, a well-behaved
//! client must still be served correctly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mcdbr::dispatch::wire::{self, Frame, WIRE_MAGIC, WIRE_VERSION};
use mcdbr::exec::InProcessBackend;
use mcdbr::mcdb::McdbEngine;
use mcdbr::prng::Pcg64;
use mcdbr::server::client::{QueryReply, ServerClient};
use mcdbr::server::service::{Server, ServerConfig, ServerHandle};
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query};

const CASES: u64 = 48;
const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn start_server() -> ServerHandle {
    let catalog = customer_losses_catalog(8, (2.0, 5.0), 11).unwrap();
    Server::start(
        catalog,
        Arc::new(InProcessBackend::new()),
        ServerConfig::default(),
    )
    .unwrap()
}

/// A raw socket with finite timeouts, so a wedged server fails the test
/// instead of hanging it.
fn raw_conn(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
    stream.set_write_timeout(Some(IO_TIMEOUT)).unwrap();
    stream
}

/// Drain whatever the server sends until it closes the connection,
/// asserting the conversation ends (EOF or error) rather than hanging.
fn read_until_close(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => return out, // reset/timeout: the conversation is over
        }
    }
}

/// The liveness probe: a clean client served end to end, samples matching
/// the serial engine.
fn assert_server_still_healthy(handle: &ServerHandle, seed: u64) {
    let catalog = customer_losses_catalog(8, (2.0, 5.0), 11).unwrap();
    let query = customer_losses_query(None);
    let mut client = ServerClient::connect(handle.addr()).unwrap();
    let QueryReply::Ok { samples, .. } = client.query(&query, 8, seed).unwrap() else {
        panic!("healthy client rejected after fuzz traffic (seed {seed})");
    };
    let want = McdbEngine::new()
        .with_backend(Arc::new(InProcessBackend::new()))
        .run_samples(&query, &catalog, 8, seed)
        .unwrap();
    assert_eq!(samples.group_columns, want.group_columns);
    for ((ka, va), (kb, vb)) in samples.groups.iter().zip(&want.groups) {
        assert_eq!(ka, kb);
        assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}

#[test]
fn random_garbage_never_wedges_the_accept_loop() {
    let handle = start_server();
    for case in 0..CASES {
        let mut rng = Pcg64::new(0x6675_7a7a ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut stream = raw_conn(handle.addr());
        let len = (rng.next_u64() % 512 + 1) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        // A write error just means the server already hung up — also fine.
        let _ = stream.write_all(&garbage);
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = read_until_close(&mut stream);
    }
    // The accept loop survived 48 hostile connections.
    assert_server_still_healthy(&handle, 1);
    handle.shutdown();
}

#[test]
fn truncated_query_frames_close_only_their_own_connection() {
    let handle = start_server();
    let query = customer_losses_query(None);
    let payload = wire::encode_query(
        &query.plan,
        &query.aggregate,
        query.final_predicate.as_ref(),
        &query.group_by,
        8,
        3,
    )
    .unwrap();
    for case in 0..CASES {
        let mut rng = Pcg64::new(0x7472_756e ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut stream = raw_conn(handle.addr());
        // Legitimate handshake first...
        wire::write_frame(&mut stream, &wire::encode_hello()).unwrap();
        stream.flush().unwrap();
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        // ...then a strict prefix of a real Query frame, cut anywhere
        // (inside the length prefix, the tag, or the plan body), then EOF.
        let cut = (rng.next_u64() % framed.len() as u64) as usize;
        let _ = stream.write_all(&framed[..cut]);
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let bytes = read_until_close(&mut stream);
        // Whatever came back (the Hello reply, possibly an error frame),
        // the connection must terminate without wedging the server.
        assert!(
            bytes.len() < 1 << 20,
            "case {case}: unbounded reply to a truncated frame"
        );
    }
    assert_server_still_healthy(&handle, 2);
    handle.shutdown();
}

#[test]
fn corrupted_query_frames_yield_typed_replies_or_clean_disconnects() {
    let handle = start_server();
    let query = customer_losses_query(Some(5));
    let payload = wire::encode_query(
        &query.plan,
        &query.aggregate,
        query.final_predicate.as_ref(),
        &query.group_by,
        8,
        3,
    )
    .unwrap();
    for case in 0..CASES {
        let mut rng = Pcg64::new(0x636f_7272 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut corrupt = payload.clone();
        // Flip a byte of the plan/aggregate body.  Byte 0 (the frame tag)
        // is exempt — a flipped tag is a *different*, well-formed request
        // (tag 7 is Shutdown) — as are the trailing reps/seed words, where
        // a high-bit flip forms a valid query for ~2^60 repetitions: a
        // resource-exhaustion case, not a protocol-robustness one.
        let at = 1 + (rng.next_u64() % (corrupt.len() as u64 - 17)) as usize;
        corrupt[at] ^= (rng.next_u64() % 255 + 1) as u8;

        let mut stream = raw_conn(handle.addr());
        wire::write_frame(&mut stream, &wire::encode_hello()).unwrap();
        stream.flush().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let (hello, _) = wire::read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(
            wire::decode_frame(&hello).unwrap(),
            Frame::Hello { .. }
        ));

        if wire::write_frame(&mut stream, &corrupt).is_err() {
            continue; // server already dropped us: a clean disconnect
        }
        let _ = stream.flush();
        // Three legal outcomes, all typed: the corruption decoded into a
        // *valid* query (single bit flips can land in payload data) and
        // ran; it was rejected with an ErrorReply; or the connection
        // closed.  A panic upstream would surface as a test failure when
        // the health probe below runs.
        // `Ok(None)` / `Err(_)` both mean a clean disconnect.
        if let Ok(Some((reply, _))) = wire::read_frame(&mut reader) {
            match wire::decode_frame(&reply) {
                Ok(Frame::QueryResult(_) | Frame::ErrorReply { .. }) => {}
                Ok(other) => panic!("case {case}: unexpected reply {other:?}"),
                Err(err) => panic!("case {case}: undecodable reply: {err}"),
            }
        }
    }
    assert_server_still_healthy(&handle, 3);
    handle.shutdown();
}

#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    let handle = start_server();
    for raw_len in [u32::MAX, u32::MAX - 1, wire::MAX_FRAME_LEN + 1] {
        let mut stream = raw_conn(handle.addr());
        wire::write_frame(&mut stream, &wire::encode_hello()).unwrap();
        stream.flush().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let (hello, _) = wire::read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(
            wire::decode_frame(&hello).unwrap(),
            Frame::Hello { .. }
        ));
        // A length prefix far beyond MAX_FRAME_LEN: the server must refuse
        // it at the frame layer (no multi-gigabyte buffer) and hang up.
        stream.write_all(&raw_len.to_le_bytes()).unwrap();
        let _ = stream.flush();
        let bytes = read_until_close(&mut stream);
        assert!(bytes.len() < 1 << 20, "unbounded reply to bogus length");
    }
    assert_server_still_healthy(&handle, 4);
    handle.shutdown();
}

#[test]
fn handshake_magic_and_version_mismatches_are_rejected_with_an_error_frame() {
    let handle = start_server();
    for (magic, version, expect) in [
        (WIRE_MAGIC, WIRE_VERSION + 7, "version mismatch"),
        (0x0BAD_F00D, WIRE_VERSION, "bad handshake magic"),
    ] {
        let mut stream = raw_conn(handle.addr());
        wire::write_frame(&mut stream, &wire::encode_hello_with(magic, version)).unwrap();
        stream.flush().unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let (reply, _) = wire::read_frame(&mut reader).unwrap().unwrap();
        match wire::decode_frame(&reply).unwrap() {
            Frame::Error { message } => {
                assert!(message.contains(expect), "unexpected rejection: {message}")
            }
            other => panic!("expected an Error frame, got {other:?}"),
        }
        // And the server closes the connection after the rejection.
        assert!(wire::read_frame(&mut reader).unwrap().is_none());
    }
    // A query before any handshake is also a handshake failure.
    let query = customer_losses_query(None);
    let mut stream = raw_conn(handle.addr());
    let payload =
        wire::encode_query(&query.plan, &query.aggregate, None, &query.group_by, 4, 1).unwrap();
    wire::write_frame(&mut stream, &payload).unwrap();
    stream.flush().unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let (reply, _) = wire::read_frame(&mut reader).unwrap().unwrap();
    match wire::decode_frame(&reply).unwrap() {
        Frame::Error { message } => {
            assert!(message.contains("Hello"), "unexpected rejection: {message}")
        }
        other => panic!("expected an Error frame, got {other:?}"),
    }
    assert_server_still_healthy(&handle, 5);
    handle.shutdown();
}
