//! The concurrency-correctness suite for `mcdbr-server`.
//!
//! The server's contract is the repo's determinism story under load: any
//! number of concurrent clients, any interleaving, any execution backend —
//! every client's samples are *bit-identical* to a single-threaded
//! `McdbEngine` run of the same `(query, reps, master_seed)`.  On top of
//! that, the shared-state counters must be exact, not approximate: one
//! skeleton miss per distinct plan server-wide (single-flight coalescing,
//! even when clients race to prime the cache), `plan_executions == 1`, and
//! admission bookkeeping that returns to zero.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use mcdbr::dispatch::ProcessBackend;
use mcdbr::exec::{ExecBackend, InProcessBackend, QueryResultSamples, ShardedBackend};
use mcdbr::mcdb::{McdbEngine, MonteCarloQuery};
use mcdbr::server::client::{QueryReply, ServerClient};
use mcdbr::server::service::{Server, ServerConfig};
use mcdbr::server::testing::GateBackend;
use mcdbr::storage::Catalog;
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query};

fn small_catalog() -> Catalog {
    customer_losses_catalog(16, (2.0, 6.0), 11).unwrap()
}

fn backends() -> Vec<(&'static str, Arc<dyn ExecBackend>)> {
    vec![
        ("in-process", Arc::new(InProcessBackend::new())),
        ("sharded", Arc::new(ShardedBackend::new(3))),
        ("process", Arc::new(ProcessBackend::new(2))),
    ]
}

/// The single-threaded referee: a fresh engine, one query at a time.
fn reference(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    reps: usize,
    seed: u64,
) -> QueryResultSamples {
    McdbEngine::new()
        .with_backend(Arc::new(InProcessBackend::new()))
        .run_samples(query, catalog, reps, seed)
        .unwrap()
}

fn assert_samples_bit_identical(got: &QueryResultSamples, want: &QueryResultSamples, ctx: &str) {
    assert_eq!(
        got.group_columns, want.group_columns,
        "{ctx}: group columns"
    );
    assert_eq!(got.groups.len(), want.groups.len(), "{ctx}: group count");
    for ((ka, va), (kb, vb)) in got.groups.iter().zip(&want.groups) {
        assert_eq!(ka, kb, "{ctx}: group keys");
        assert_eq!(va.len(), vb.len(), "{ctx}: samples per group");
        for (i, (x, y)) in va.iter().zip(vb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: sample {i} differs ({x} vs {y})"
            );
        }
    }
}

#[test]
fn concurrent_clients_are_bit_identical_to_a_single_threaded_engine_on_every_backend() {
    // 4 clients × 3 queries each, mixed plans (full-sum and filtered),
    // per-query seeds — all samples must equal the serial referee's.
    let catalog = small_catalog();
    let plans = [customer_losses_query(None), customer_losses_query(Some(8))];
    let reps = 24usize;
    for (name, backend) in backends() {
        let handle = Server::start(
            catalog.clone(),
            backend,
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4u64)
            .map(|client_idx| {
                let plans = plans.clone();
                std::thread::spawn(move || {
                    let mut client = ServerClient::connect(addr).unwrap();
                    let mut out = Vec::new();
                    for q in 0..3u64 {
                        let query = &plans[(client_idx + q) as usize % plans.len()];
                        let seed = client_idx * 100 + q;
                        match client.query_retrying(query, reps, seed).unwrap() {
                            QueryReply::Ok { samples, .. } => {
                                out.push((query.clone(), seed, samples))
                            }
                            QueryReply::Rejected { code, message } => {
                                panic!("client {client_idx} rejected: {code:?} {message}")
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for (client_idx, thread) in threads.into_iter().enumerate() {
            for (query, seed, samples) in thread.join().unwrap() {
                let want = reference(&query, &catalog, reps, seed);
                assert_samples_bit_identical(
                    &samples,
                    &want,
                    &format!("backend {name}, client {client_idx}, seed {seed}"),
                );
            }
        }
        let stats = handle.shutdown();
        assert_eq!(stats.queries_served, 12, "backend {name}");
        assert_eq!(stats.inflight, 0, "backend {name}: slots must drain");
        // Two distinct plans: exactly two skeleton builds server-wide, the
        // other ten queries ride the shared cache.
        assert_eq!(stats.skeleton_misses, 2, "backend {name}");
        assert_eq!(stats.skeleton_hits, 10, "backend {name}");
        assert_eq!(stats.plan_executions, 2, "backend {name}");
    }
}

#[test]
fn racing_cache_primes_coalesce_to_one_skeleton_build() {
    // The hardest interleaving: N clients release at a barrier and submit
    // the *same* plan simultaneously against a cold cache.  Single-flight
    // coalescing must yield exactly one miss + one plan execution
    // server-wide; the N-1 racers wait and land as hits.  Every result
    // still matches the serial referee.
    let catalog = small_catalog();
    let query = customer_losses_query(Some(8));
    let reps = 16usize;
    for (name, backend) in backends() {
        let handle = Server::start(catalog.clone(), backend, ServerConfig::default()).unwrap();
        let addr = handle.addr();
        let clients = 6u64;
        let barrier = Arc::new(Barrier::new(clients as usize));
        let hits = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..clients)
            .map(|seed| {
                let query = query.clone();
                let barrier = Arc::clone(&barrier);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    // Connect + handshake first so the barrier releases the
                    // Query frames themselves as close together as possible.
                    let mut client = ServerClient::connect(addr).unwrap();
                    barrier.wait();
                    match client.query_retrying(&query, reps, seed).unwrap() {
                        QueryReply::Ok { samples, stats } => {
                            if stats.skeleton_hit {
                                hits.fetch_add(1, Ordering::SeqCst);
                            }
                            assert_eq!(
                                stats.plan_executions + u64::from(stats.skeleton_hit),
                                1,
                                "a hit skips phase 1; a miss runs it exactly once"
                            );
                            (seed, samples)
                        }
                        QueryReply::Rejected { code, message } => {
                            panic!("seed {seed} rejected: {code:?} {message}")
                        }
                    }
                })
            })
            .collect();
        for thread in threads {
            let (seed, samples) = thread.join().unwrap();
            let want = reference(&query, &catalog, reps, seed);
            assert_samples_bit_identical(&samples, &want, &format!("backend {name}, seed {seed}"));
        }
        assert_eq!(
            hits.load(Ordering::SeqCst) as u64,
            clients - 1,
            "backend {name}: exactly one racer may build the skeleton"
        );
        let stats = handle.shutdown();
        assert_eq!(stats.skeleton_misses, 1, "backend {name}");
        assert_eq!(stats.skeleton_hits, clients - 1, "backend {name}");
        assert_eq!(
            stats.plan_executions, 1,
            "backend {name}: racing primes must not duplicate phase 1"
        );
    }
}

#[test]
fn second_client_rides_the_first_clients_skeleton() {
    // The ISSUE's shared-cache acceptance criterion, in its simplest form:
    // client B's identical plan is a skeleton hit even though client A (a
    // different connection) primed the cache.
    let catalog = small_catalog();
    let query = customer_losses_query(None);
    let handle = Server::start(
        catalog.clone(),
        Arc::new(InProcessBackend::new()),
        ServerConfig::default(),
    )
    .unwrap();

    let mut a = ServerClient::connect(handle.addr()).unwrap();
    let QueryReply::Ok {
        stats: sa,
        samples: ra,
    } = a.query(&query, 12, 1).unwrap()
    else {
        panic!("client A rejected");
    };
    assert!(!sa.skeleton_hit, "cold cache: A must miss");
    assert_eq!(sa.plan_executions, 1);

    let mut b = ServerClient::connect(handle.addr()).unwrap();
    let QueryReply::Ok {
        stats: sb,
        samples: rb,
    } = b.query(&query, 12, 2).unwrap()
    else {
        panic!("client B rejected");
    };
    assert!(sb.skeleton_hit, "B must ride A's skeleton");
    assert_eq!(sb.plan_executions, 0, "a hit skips phase 1 entirely");

    // Different seeds, shared skeleton: still the serial engine's bits.
    assert_samples_bit_identical(&ra, &reference(&query, &catalog, 12, 1), "client A");
    assert_samples_bit_identical(&rb, &reference(&query, &catalog, 12, 2), "client B");

    let stats = b.server_stats().unwrap();
    assert_eq!(stats.plan_executions, 1, "one plan execution server-wide");
    assert_eq!((stats.skeleton_misses, stats.skeleton_hits), (1, 1));
    handle.shutdown();
}

#[test]
fn admission_cap_rejects_with_typed_busy_while_a_query_is_provably_in_flight() {
    // GateBackend holds client A's query inside the executor; with
    // max_inflight = 1 the server must answer client B `Busy` — a typed,
    // deterministic rejection, not a queue or a hang — and B's retry after
    // the gate opens must succeed with bit-exact samples.
    let catalog = small_catalog();
    let query = customer_losses_query(None);
    let gate = Arc::new(GateBackend::new());
    let handle = Server::start(
        catalog.clone(),
        Arc::clone(&gate) as Arc<dyn ExecBackend>,
        ServerConfig {
            workers: 2,
            max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let a = std::thread::spawn({
        let query = query.clone();
        move || {
            let mut client = ServerClient::connect(addr).unwrap();
            client.query(&query, 12, 7).unwrap()
        }
    });
    // Only proceed once A is *inside* instantiate_block holding the slot.
    gate.wait_entered(1);

    let mut b = ServerClient::connect(addr).unwrap();
    match b.query(&query, 12, 8).unwrap() {
        QueryReply::Rejected { code, .. } => {
            assert_eq!(code, mcdbr::dispatch::wire::ReplyCode::Busy)
        }
        QueryReply::Ok { .. } => panic!("B must be turned away while A holds the only slot"),
    }

    gate.open();
    let QueryReply::Ok { samples: ra, .. } = a.join().unwrap() else {
        panic!("A rejected");
    };
    let QueryReply::Ok { samples: rb, .. } = b.query_retrying(&query, 12, 8).unwrap() else {
        panic!("B rejected after gate opened");
    };
    assert_samples_bit_identical(&ra, &reference(&query, &catalog, 12, 7), "client A");
    assert_samples_bit_identical(&rb, &reference(&query, &catalog, 12, 8), "client B");

    let stats = handle.shutdown();
    assert_eq!(stats.busy_rejections, 1, "exactly the one gated rejection");
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.queries_served, 2);
}

#[test]
fn shared_counters_stay_exact_under_load() {
    // The counter-audit satellite: SessionCache and BlockBufferPool totals
    // observed through the handle must be *exact* after M clients × Q
    // queries — lost updates under concurrency would show up as drift.
    let catalog = small_catalog();
    let query = customer_losses_query(Some(8));
    let (clients, per_client, reps) = (5u64, 4u64, 8usize);
    let handle = Server::start(
        catalog.clone(),
        Arc::new(ShardedBackend::new(2)),
        ServerConfig {
            workers: 3,
            max_inflight: 64, // never Busy: keeps queries_served exact
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let query = query.clone();
            std::thread::spawn(move || {
                let mut client = ServerClient::connect(addr).unwrap();
                for q in 0..per_client {
                    match client.query(&query, reps, c * 10 + q).unwrap() {
                        QueryReply::Ok { .. } => {}
                        QueryReply::Rejected { code, message } => {
                            panic!("rejected under cap: {code:?} {message}")
                        }
                    }
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }

    let total = clients * per_client;
    assert_eq!(handle.cache().skeleton_misses() as u64, 1);
    assert_eq!(handle.cache().skeleton_hits() as u64, total - 1);
    assert!(
        handle.pool().buffer_reuses() > 0,
        "repeated blocks over the shared pool must recycle buffers"
    );

    let stats = handle.shutdown();
    assert_eq!(stats.queries_served, total);
    assert_eq!(stats.busy_rejections, 0);
    assert_eq!(stats.plan_executions, 1);
    assert_eq!(stats.inflight, 0);
    assert_eq!(stats.connections, clients, "one connection per client");
    assert!(
        stats.tasks_dispatched >= total,
        "every query dispatched work"
    );
}
