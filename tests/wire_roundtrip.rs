//! Property-style tests over the dispatch wire format: every frame's
//! encode→decode round trip is the identity, truncated or corrupted bytes
//! come back as typed errors (never panics), and version negotiation
//! rejects mismatched peers at the handshake.
//!
//! Like `property_invariants.rs`, the build environment has no registry
//! access, so instead of `proptest` these use a seeded case generator over
//! the repository's own [`Pcg64`]: each property runs for pseudorandom
//! configurations whose case seed is carried in every failure message.

use std::sync::Arc;

use mcdbr::dispatch::wire::{
    self, Frame, PlanKey, QueryStats, ReplyCode, ServerStats, TaskHeader, TaskStats, WireError,
    WIRE_MAGIC, WIRE_VERSION,
};
use mcdbr::dispatch::worker::run_worker;
use mcdbr::exec::plan::{OutputColumn, RandomTableSpec};
use mcdbr::exec::{
    AggFunc, AggregateSpec, BundleValue, Expr, PlanNode, QueryResultSamples, TupleBundle,
};
use mcdbr::prng::{Pcg64, StreamKey, StreamKeyRange};
use mcdbr::storage::{Catalog, Field, Schema, Table, TableBuilder, Tuple, Value};
use mcdbr::vg::{
    BayesianDemandVg, DiscreteVg, GbmTerminalVg, MultiNormalVg, NormalVg, PoissonVg, UniformVg,
    VgFunction,
};

const CASES: u64 = 64;

struct Gen {
    rng: Pcg64,
}

impl Gen {
    fn new(case: u64) -> Self {
        Gen {
            rng: Pcg64::new(0x77697265 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.rng.next_u64().is_multiple_of(2)
    }

    /// A random value, optionally including the bit-exactness landmines
    /// (NaN with payload, negative zero, infinities).
    fn value(&mut self, specials: bool) -> Value {
        match self.usize_in(0, if specials { 6 } else { 5 }) {
            0 => Value::Null,
            1 => Value::Int64(self.u64() as i64),
            2 => Value::Float64(f64::from_bits(self.u64() & !(0x7ffu64 << 52))),
            3 => Value::Bool(self.bool()),
            4 => {
                let len = self.usize_in(0, 12);
                let s: String = (0..len)
                    .map(|_| char::from(b'a' + (self.u64() % 26) as u8))
                    .collect();
                Value::str(s)
            }
            _ => [
                Value::Float64(f64::from_bits(0x7ff8_dead_beef_0001)),
                Value::Float64(-0.0),
                Value::Float64(f64::INFINITY),
                Value::Float64(f64::NEG_INFINITY),
            ][self.usize_in(0, 4)]
            .clone(),
        }
    }

    fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.usize_in(0, 3) == 0 {
            return if self.bool() {
                Expr::col(format!("c{}", self.usize_in(0, 5)))
            } else {
                Expr::Literal(self.value(false))
            };
        }
        match self.usize_in(0, 3) {
            0 => self.expr(depth - 1).add(self.expr(depth - 1)),
            1 => self.expr(depth - 1).lt(self.expr(depth - 1)),
            _ => Expr::Not(Box::new(self.expr(depth - 1))),
        }
    }

    fn vg(&mut self) -> Arc<dyn VgFunction> {
        match self.usize_in(0, 7) {
            0 => Arc::new(NormalVg),
            1 => Arc::new(UniformVg),
            2 => Arc::new(PoissonVg),
            3 => {
                let n = self.usize_in(1, 5);
                Arc::new(DiscreteVg::new((0..n).map(|_| self.value(false)).collect()))
            }
            4 => Arc::new(MultiNormalVg::new(
                self.usize_in(1, 4),
                (self.u64() % 1000) as f64 / 1000.0,
            )),
            5 => Arc::new(BayesianDemandVg),
            _ => Arc::new(GbmTerminalVg::new(self.usize_in(1, 64))),
        }
    }

    fn plan(&mut self, depth: usize) -> PlanNode {
        let leaf = if self.bool() {
            PlanNode::scan(format!("t{}", self.usize_in(0, 3)))
        } else {
            let num_params = self.usize_in(0, 3);
            let num_cols = self.usize_in(1, 4);
            PlanNode::RandomTable(RandomTableSpec {
                name: format!("U{}", self.usize_in(0, 9)),
                param_table: format!("t{}", self.usize_in(0, 3)),
                vg: self.vg(),
                vg_params: (0..num_params).map(|_| self.expr(2)).collect(),
                columns: (0..num_cols)
                    .map(|i| {
                        if self.bool() {
                            OutputColumn::Param {
                                source: format!("c{}", self.usize_in(0, 5)),
                                as_name: format!("a{i}"),
                            }
                        } else {
                            OutputColumn::Vg {
                                vg_col: self.usize_in(0, 3),
                                as_name: format!("a{i}"),
                            }
                        }
                    })
                    .collect(),
                table_tag: self.u64(),
            })
        };
        if depth == 0 {
            return leaf;
        }
        match self.usize_in(0, 5) {
            0 => self.plan(depth - 1).filter(self.expr(2)),
            1 => self.plan(depth - 1).project(vec![
                ("p0".to_string(), self.expr(2)),
                ("p1".to_string(), self.expr(1)),
            ]),
            2 => self
                .plan(depth - 1)
                .join(self.plan(depth - 1), vec![("c0", "c1")]),
            3 => self
                .plan(depth - 1)
                .split(format!("c{}", self.usize_in(0, 5))),
            _ => leaf,
        }
    }

    fn table(&mut self) -> Table {
        let cols = self.usize_in(1, 4);
        let fields: Vec<Field> = (0..cols)
            .map(|i| match self.usize_in(0, 4) {
                0 => Field::int64(format!("c{i}")),
                1 => Field::float64(format!("c{i}")),
                2 => Field::utf8(format!("c{i}")),
                _ => Field::boolean(format!("c{i}")),
            })
            .collect();
        let rows = self.usize_in(0, 10);
        let mut builder = TableBuilder::new(Schema::new(fields));
        for _ in 0..rows {
            // Cell types drift from the declared field type on purpose:
            // the codec must carry the actual values, Mixed columns
            // included.
            builder = builder.tuple(Tuple::new((0..cols).map(|_| self.value(true)).collect()));
        }
        builder.build().unwrap()
    }

    fn bundle(&mut self, specials: bool) -> TupleBundle {
        let arity = self.usize_in(1, 5);
        let reps = self.usize_in(0, 9);
        let values = (0..arity)
            .map(|_| match self.usize_in(0, 3) {
                0 => BundleValue::Const(self.value(specials)),
                1 => BundleValue::Random {
                    seed: self.u64(),
                    vg_row: self.usize_in(0, 4),
                    vg_col: self.usize_in(0, 4),
                    base_pos: self.u64(),
                    values: (0..reps).map(|_| self.value(specials)).collect(),
                },
                _ => BundleValue::Computed((0..reps).map(|_| self.value(specials)).collect()),
            })
            .collect();
        let is_pres = if self.bool() {
            Some((0..reps).map(|_| self.bool()).collect())
        } else {
            None
        };
        TupleBundle { values, is_pres }
    }

    fn aggregate(&mut self) -> AggregateSpec {
        AggregateSpec {
            func: [
                AggFunc::Sum,
                AggFunc::Count,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
            ][self.usize_in(0, 5)],
            expr: self.expr(2),
            alias: format!("agg{}", self.usize_in(0, 9)),
        }
    }

    /// Per-repetition sample payloads, raw-bit floats included (NaN
    /// payloads, infinities) — the QueryResult frame must carry them
    /// bit-exactly.
    fn samples(&mut self) -> QueryResultSamples {
        let num_columns = self.usize_in(0, 3);
        let group_columns: Vec<String> = (0..num_columns).map(|i| format!("g{i}")).collect();
        let groups = (0..self.usize_in(0, 5))
            .map(|_| {
                let key: Vec<Value> = (0..num_columns).map(|_| self.value(false)).collect();
                let xs: Vec<f64> = (0..self.usize_in(0, 16))
                    .map(|_| f64::from_bits(self.u64()))
                    .collect();
                (key, xs)
            })
            .collect();
        QueryResultSamples {
            group_columns,
            groups,
        }
    }

    fn key_range(&mut self) -> StreamKeyRange {
        let start = StreamKey::new(self.u64() % 16, self.u64());
        if self.bool() {
            StreamKeyRange { start, end: None }
        } else {
            StreamKeyRange {
                start,
                end: Some(StreamKey::new(self.u64() % 16, self.u64())),
            }
        }
    }
}

/// Register every table a plan references so `encode_plan` can snapshot it.
fn catalog_for(_plan: &PlanNode, g: &mut Gen) -> Catalog {
    let mut catalog = Catalog::new();
    for i in 0..3 {
        catalog.register(format!("t{i}"), g.table()).unwrap();
    }
    catalog
}

#[test]
fn plan_frames_round_trip_identically() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let depth = g.usize_in(1, 4);
        let plan = g.plan(depth);
        let catalog = catalog_for(&plan, &mut g);
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let payload = wire::encode_plan(key, &plan, &catalog).unwrap();
        match wire::decode_frame(&payload).unwrap() {
            Frame::Plan {
                key: got_key,
                plan: got_plan,
                tables,
            } => {
                assert_eq!(got_key, key, "case {case}");
                // PlanNode carries trait objects, so equality is asserted
                // through the structural fingerprint (every
                // execution-relevant field) plus the rendered tree (names).
                assert_eq!(
                    got_plan.fingerprint(),
                    plan.fingerprint(),
                    "case {case}: fingerprint drifted across the wire"
                );
                assert_eq!(got_plan.to_string(), plan.to_string(), "case {case}");
                // Table references carry the content hash of each catalog
                // table — the frame ships hashes, never row data.
                let expected = wire::plan_table_refs(&plan, &catalog).unwrap();
                assert_eq!(tables, expected, "case {case}: table refs drifted");
                for r in &tables {
                    let original = catalog.get(&r.name).unwrap();
                    assert_eq!(r.hash, original.content_hash(), "case {case} {}", r.name);
                }
            }
            other => panic!("case {case}: decoded {other:?}"),
        }
        // Re-encoding the decoded plan is byte-identical: the strongest
        // identity check, NaN payloads and all. encode_plan reads the epoch
        // from the key and the hashes from the (unchanged) catalog.
        let Frame::Plan { key, plan, .. } = wire::decode_frame(&payload).unwrap() else {
            unreachable!()
        };
        let re = wire::encode_plan(key, &plan, &catalog).unwrap();
        assert_eq!(re, payload, "case {case}: re-encode differs");
    }
}

#[test]
fn need_tables_and_table_data_frames_round_trip_identically() {
    for case in 0..CASES {
        let mut g = Gen::new(case.wrapping_add(0x7ab1e));

        // NeedTables: an arbitrary (possibly empty) hash list.
        let hashes: Vec<u64> = (0..g.usize_in(0, 6)).map(|_| g.u64()).collect();
        let payload = wire::encode_need_tables(&hashes);
        match wire::decode_frame(&payload).unwrap() {
            Frame::NeedTables { hashes: got } => assert_eq!(got, hashes, "case {case}"),
            other => panic!("case {case}: decoded {other:?}"),
        }

        // TableData: the paged table codec must carry rows value-exactly
        // (floats bit-exactly) and reproduce the same content hash on the
        // receiving side — that identity is what lets the worker verify the
        // payload against the hash the coordinator advertised.
        let table = g.table();
        let hash = table.content_hash();
        let payload = wire::encode_table_data(hash, &table).unwrap();
        let Frame::TableData {
            hash: got_hash,
            table: got,
        } = wire::decode_frame(&payload).unwrap()
        else {
            panic!("case {case}: wrong frame shape");
        };
        assert_eq!(got_hash, hash, "case {case}");
        assert_eq!(got.schema(), table.schema(), "case {case}");
        assert_eq!(got.len(), table.len(), "case {case}");
        for (a, b) in got.iter().zip(table.iter()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                match (x, y) {
                    (Value::Float64(x), Value::Float64(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "case {case}")
                    }
                    _ => assert_eq!(x, y, "case {case}"),
                }
            }
        }
        assert_eq!(
            got.content_hash(),
            hash,
            "case {case}: content hash not reproducible after decode"
        );
        // Byte-identical re-encode: pages ship verbatim, so the round trip
        // preserves the physical layout, not just the logical rows.
        assert_eq!(
            wire::encode_table_data(got_hash, &got).unwrap(),
            payload,
            "case {case}: re-encode differs"
        );

        // A multi-page table (tiny page budget) exercises the page-count >
        // 1 path of the codec.
        let rows: Vec<Tuple> = got.iter().collect();
        let paged = Table::with_page_budget(got.schema().clone(), rows, 32).unwrap();
        let hash = paged.content_hash();
        let payload = wire::encode_table_data(hash, &paged).unwrap();
        let Frame::TableData { table: got, .. } = wire::decode_frame(&payload).unwrap() else {
            panic!("case {case}: wrong frame shape");
        };
        // Rows may contain NaN payloads, so bit-identity is asserted via
        // the reproduced content hash and a byte-identical re-encode
        // rather than logical PartialEq (NaN != NaN).
        assert_eq!(got.pages().len(), paged.pages().len(), "case {case}");
        assert_eq!(got.content_hash(), hash, "case {case}");
        assert_eq!(
            wire::encode_table_data(hash, &got).unwrap(),
            payload,
            "case {case}: multi-page re-encode differs"
        );
    }
}

#[test]
fn task_bundle_and_stats_frames_round_trip_identically() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let task = TaskHeader {
            key: PlanKey {
                fingerprint: g.u64(),
                epoch: g.u64(),
            },
            master_seed: g.u64(),
            key_range: g.key_range(),
            base_pos: g.u64(),
            num_values: g.usize_in(0, 100_000),
        };
        match wire::decode_frame(&wire::encode_task(&task)).unwrap() {
            Frame::Task(got) => assert_eq!(got, task, "case {case}"),
            other => panic!("case {case}: decoded {other:?}"),
        }

        // Bundles without float specials compare by PartialEq...
        let idx = g.usize_in(0, 1000);
        let bundle = g.bundle(false);
        match wire::decode_frame(&wire::encode_bundle(idx, Some(&bundle))).unwrap() {
            Frame::Bundle {
                idx: got_idx,
                bundle: Some(got),
            } => {
                assert_eq!(got_idx, idx, "case {case}");
                assert_eq!(got, bundle, "case {case}");
            }
            other => panic!("case {case}: decoded {other:?}"),
        }
        // ...bundles *with* NaN payloads / -0.0 / infinities are asserted
        // byte-exact through a re-encode (PartialEq can't see NaN bits).
        let special = g.bundle(true);
        let payload = wire::encode_bundle(idx, Some(&special));
        let Frame::Bundle {
            bundle: Some(got), ..
        } = wire::decode_frame(&payload).unwrap()
        else {
            panic!("case {case}: bundle frame shape");
        };
        assert_eq!(
            wire::encode_bundle(idx, Some(&got)),
            payload,
            "case {case}: special-value bundle not bit-identical"
        );

        // Absent bundles and stats frames.
        match wire::decode_frame(&wire::encode_bundle(idx, None)).unwrap() {
            Frame::Bundle { bundle: None, .. } => {}
            other => panic!("case {case}: decoded {other:?}"),
        }
        let stats = TaskStats {
            bundles: g.usize_in(0, 100),
            foreign_streams: g.usize_in(0, 100),
            warm_hit: g.bool(),
            store_evictions: g.u64() % 1000,
        };
        match wire::decode_frame(&wire::encode_task_stats(stats)).unwrap() {
            Frame::TaskStats(got) => assert_eq!(got, stats, "case {case}"),
            other => panic!("case {case}: decoded {other:?}"),
        }
    }
}

#[test]
fn control_frames_round_trip() {
    match wire::decode_frame(&wire::encode_hello()).unwrap() {
        Frame::Hello { magic, version } => {
            assert_eq!(magic, WIRE_MAGIC);
            assert_eq!(version, WIRE_VERSION);
        }
        other => panic!("decoded {other:?}"),
    }
    match wire::decode_frame(&wire::encode_error("it broke")).unwrap() {
        Frame::Error { message } => assert_eq!(message, "it broke"),
        other => panic!("decoded {other:?}"),
    }
    assert!(matches!(
        wire::decode_frame(&wire::encode_shutdown()).unwrap(),
        Frame::Shutdown
    ));
}

#[test]
fn query_frames_round_trip_identically() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let depth = g.usize_in(1, 3);
        let plan = g.plan(depth);
        let aggregate = g.aggregate();
        let final_predicate = if g.bool() { Some(g.expr(2)) } else { None };
        let group_by: Vec<String> = (0..g.usize_in(0, 4)).map(|i| format!("k{i}")).collect();
        let (reps, master_seed) = (g.u64(), g.u64());
        let payload = wire::encode_query(
            &plan,
            &aggregate,
            final_predicate.as_ref(),
            &group_by,
            reps,
            master_seed,
        )
        .unwrap();
        let Frame::Query {
            plan: got_plan,
            aggregate: got_agg,
            final_predicate: got_pred,
            group_by: got_group,
            reps: got_reps,
            master_seed: got_seed,
        } = wire::decode_frame(&payload).unwrap()
        else {
            panic!("case {case}: wrong frame shape");
        };
        assert_eq!(got_plan.fingerprint(), plan.fingerprint(), "case {case}");
        assert_eq!(got_plan.to_string(), plan.to_string(), "case {case}");
        assert_eq!(got_agg.func, aggregate.func, "case {case}");
        assert_eq!(got_agg.expr, aggregate.expr, "case {case}");
        assert_eq!(got_agg.alias, aggregate.alias, "case {case}");
        assert_eq!(got_pred, final_predicate, "case {case}");
        assert_eq!(got_group, group_by, "case {case}");
        assert_eq!((got_reps, got_seed), (reps, master_seed), "case {case}");
        // Byte-exact re-encode closes the loop on anything PartialEq is
        // blind to.
        let re = wire::encode_query(
            &got_plan,
            &got_agg,
            got_pred.as_ref(),
            &got_group,
            got_reps,
            got_seed,
        )
        .unwrap();
        assert_eq!(re, payload, "case {case}: re-encode differs");
    }
}

#[test]
fn server_reply_frames_round_trip_identically() {
    for case in 0..CASES {
        let mut g = Gen::new(case.wrapping_add(7777));

        // QueryResult: per-repetition samples must survive bit-exactly,
        // NaN payloads included — proven by byte-identical re-encode.
        let samples = g.samples();
        let payload = wire::encode_query_result(&samples);
        let Frame::QueryResult(got) = wire::decode_frame(&payload).unwrap() else {
            panic!("case {case}: wrong frame shape");
        };
        assert_eq!(got.group_columns, samples.group_columns, "case {case}");
        assert_eq!(got.groups.len(), samples.groups.len(), "case {case}");
        for ((ka, va), (kb, vb)) in got.groups.iter().zip(&samples.groups) {
            assert_eq!(ka, kb, "case {case}");
            assert!(
                va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()),
                "case {case}: sample bits drifted"
            );
        }
        assert_eq!(wire::encode_query_result(&got), payload, "case {case}");

        // ErrorReply: every code survives with its message.
        for code in [
            ReplyCode::Busy,
            ReplyCode::ShuttingDown,
            ReplyCode::Invalid,
            ReplyCode::Internal,
        ] {
            let message = format!("m{}", g.u64());
            match wire::decode_frame(&wire::encode_error_reply(code, &message)).unwrap() {
                Frame::ErrorReply {
                    code: got_code,
                    message: got_message,
                } => {
                    assert_eq!(got_code, code, "case {case}");
                    assert_eq!(got_message, message, "case {case}");
                }
                other => panic!("case {case}: decoded {other:?}"),
            }
        }

        // QueryStats and ServerStats counter frames.
        let stats = QueryStats {
            skeleton_hit: g.bool(),
            plan_executions: g.u64(),
            tasks_dispatched: g.u64(),
            shards_spawned: g.u64(),
            queue_wait_ns: g.u64(),
            exec_ns: g.u64(),
        };
        match wire::decode_frame(&wire::encode_query_stats(stats)).unwrap() {
            Frame::QueryStats(got) => assert_eq!(got, stats, "case {case}"),
            other => panic!("case {case}: decoded {other:?}"),
        }
        let server = ServerStats {
            queries_served: g.u64(),
            skeleton_hits: g.u64(),
            skeleton_misses: g.u64(),
            plan_executions: g.u64(),
            tasks_dispatched: g.u64(),
            busy_rejections: g.u64(),
            connections: g.u64(),
            inflight: g.u64(),
            query_timeouts: g.u64(),
        };
        match wire::decode_frame(&wire::encode_server_stats(server)).unwrap() {
            Frame::ServerStats(got) => assert_eq!(got, server, "case {case}"),
            other => panic!("case {case}: decoded {other:?}"),
        }
    }
    assert!(matches!(
        wire::decode_frame(&wire::encode_stats_request()).unwrap(),
        Frame::StatsRequest
    ));
}

#[test]
fn truncated_frames_return_typed_errors() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let plan = g.plan(2);
        let catalog = catalog_for(&plan, &mut g);
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let frames = [
            wire::encode_hello(),
            wire::encode_plan(key, &plan, &catalog).unwrap(),
            wire::encode_task(&TaskHeader {
                key,
                master_seed: g.u64(),
                key_range: g.key_range(),
                base_pos: 0,
                num_values: 7,
            }),
            wire::encode_bundle(3, Some(&g.bundle(true))),
            wire::encode_need_tables(&[g.u64(), g.u64()]),
            {
                let t = g.table();
                wire::encode_table_data(t.content_hash(), &t).unwrap()
            },
            wire::encode_task_stats(TaskStats {
                bundles: 1,
                foreign_streams: 0,
                warm_hit: true,
                store_evictions: 2,
            }),
            wire::encode_error("x"),
            wire::encode_query(&plan, &g.aggregate(), None, &["k".to_string()], 8, 3).unwrap(),
            wire::encode_query_result(&g.samples()),
            wire::encode_error_reply(wire::ReplyCode::Busy, "b"),
            wire::encode_query_stats(QueryStats::default()),
            wire::encode_server_stats(ServerStats::default()),
        ];
        for (fi, frame) in frames.iter().enumerate() {
            // Every strict prefix must fail with a typed error, not panic
            // (sample larger frames to keep the suite fast).
            let step = (frame.len() / 64).max(1);
            for cut in (0..frame.len()).step_by(step) {
                let err = wire::decode_frame(&frame[..cut])
                    .expect_err(&format!("case {case} frame {fi} cut {cut} decoded"));
                assert!(
                    matches!(err, WireError::Truncated { .. } | WireError::Corrupt(_)),
                    "case {case} frame {fi} cut {cut}: unexpected {err:?}"
                );
            }
        }
    }
}

#[test]
fn corrupted_frames_never_panic_and_bad_tags_are_typed() {
    assert!(matches!(
        wire::decode_frame(&[99, 0, 0]),
        Err(WireError::Corrupt(_))
    ));
    assert!(matches!(
        wire::decode_frame(&[]),
        Err(WireError::Truncated { .. })
    ));
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let bundle_frame = wire::encode_bundle(1, Some(&g.bundle(true)));
        let plan = g.plan(2);
        let catalog = catalog_for(&plan, &mut g);
        let plan_frame = wire::encode_plan(
            PlanKey {
                fingerprint: 1,
                epoch: 2,
            },
            &plan,
            &catalog,
        )
        .unwrap();
        let table = g.table();
        let table_frame = wire::encode_table_data(table.content_hash(), &table).unwrap();
        for frame in [bundle_frame, plan_frame, table_frame] {
            for _ in 0..32 {
                let mut corrupt = frame.clone();
                let at = g.usize_in(0, corrupt.len());
                corrupt[at] ^= (g.u64() % 255 + 1) as u8;
                // Must return (Ok or a typed Err), never panic.
                let _ = wire::decode_frame(&corrupt);
            }
        }
    }
}

#[test]
fn handshake_rejects_version_and_magic_mismatches() {
    // Drive the real worker loop over in-memory pipes: a peer announcing a
    // different protocol version (or the wrong magic) must be rejected at
    // the handshake — with an Error frame on the way out — before any
    // plan or task bytes are consumed.
    for (magic, version, expect_message) in [
        (WIRE_MAGIC, WIRE_VERSION + 9, "version mismatch"),
        (0x0BAD_F00D, WIRE_VERSION, "bad handshake magic"),
    ] {
        let mut input = Vec::new();
        wire::write_frame(&mut input, &wire::encode_hello_with(magic, version)).unwrap();
        let mut reader = std::io::Cursor::new(input);
        let mut output = Vec::new();
        let result = run_worker(&mut reader, &mut output);
        assert!(result.is_err(), "worker accepted a mismatched handshake");
        let mut cursor = std::io::Cursor::new(output);
        let (payload, _) = wire::read_frame(&mut cursor).unwrap().unwrap();
        match wire::decode_frame(&payload).unwrap() {
            Frame::Error { message } => assert!(
                message.contains(expect_message),
                "unexpected handshake error: {message}"
            ),
            other => panic!("expected an Error frame, got {other:?}"),
        }
    }
    // And the well-formed handshake is answered with a matching Hello.
    let mut input = Vec::new();
    wire::write_frame(&mut input, &wire::encode_hello()).unwrap();
    let mut reader = std::io::Cursor::new(input);
    let mut output = Vec::new();
    run_worker(&mut reader, &mut output).unwrap();
    let (payload, _) = wire::read_frame(&mut std::io::Cursor::new(output))
        .unwrap()
        .unwrap();
    assert!(matches!(
        wire::decode_frame(&payload).unwrap(),
        Frame::Hello {
            magic: WIRE_MAGIC,
            version: WIRE_VERSION
        }
    ));
}
