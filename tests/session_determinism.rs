//! The determinism suite for two-phase execution sessions.
//!
//! `ExecSession::instantiate_block(catalog, base_pos, num_values)` must
//! produce a `BundleSet` *bit-identical* to a from-scratch
//! `Executor::execute` at the same `(master_seed, base_pos, num_values)` —
//! for simple and multi-operator plans, across replenishment boundaries, and
//! for every worker-thread count.  This is the property that lets the
//! GibbsLooper and the MCDB engine replace per-block plan re-execution with
//! cached-prefix block materialization without changing a single result.

use mcdbr::dispatch::ProcessBackend;
use mcdbr::exec::aggregate::{evaluate_aggregate, evaluate_aggregate_threads};
use mcdbr::exec::{
    instantiate_block_rows, BlockBufferPool, BundleValue, ExecBackend, ExecOptions, ExecSession,
    Executor, Expr, InProcessBackend, PlanNode, SessionCache, ShardedBackend,
};
use mcdbr::mcdb::McdbEngine;
use mcdbr::storage::{Catalog, Field, Schema, TableBuilder, Value};
use mcdbr::vg::NormalVg;
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query, TpchConfig, TpchWorkload};
use std::sync::Arc;

fn exec_from_scratch(
    plan: &PlanNode,
    catalog: &Catalog,
    seed: u64,
    base: u64,
    n: usize,
) -> mcdbr::exec::BundleSet {
    Executor::new()
        .execute(
            plan,
            catalog,
            &ExecOptions {
                master_seed: seed,
                num_values: n,
                base_pos: base,
            },
        )
        .unwrap()
}

fn assert_bit_identical(a: &mcdbr::exec::BundleSet, b: &mcdbr::exec::BundleSet) {
    assert_eq!(a.schema, b.schema, "schemas differ");
    assert_eq!(a.num_reps, b.num_reps, "repetition counts differ");
    assert_eq!(a.bundles.len(), b.bundles.len(), "bundle counts differ");
    for (i, (x, y)) in a.bundles.iter().zip(&b.bundles).enumerate() {
        assert_eq!(x.is_pres, y.is_pres, "presence differs at bundle {i}");
        assert_eq!(
            x.values.len(),
            y.values.len(),
            "arity differs at bundle {i}"
        );
        for (c, (vx, vy)) in x.values.iter().zip(&y.values).enumerate() {
            match (vx, vy) {
                // Float comparison must be by bits, not by PartialEq alone.
                (
                    BundleValue::Const(Value::Float64(fx)),
                    BundleValue::Const(Value::Float64(fy)),
                ) => {
                    assert_eq!(fx.to_bits(), fy.to_bits(), "bundle {i} col {c}");
                }
                _ => assert_eq!(vx, vy, "bundle {i} col {c}"),
            }
        }
    }
}

/// A catalog + multi-operator plan exercising scan, random table, both filter
/// kinds, a join, and projections (computed and lineage-preserving).
fn complex_case() -> (Catalog, PlanNode) {
    let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
        .row([Value::Int64(1), Value::Float64(3.0)])
        .row([Value::Int64(2), Value::Float64(4.0)])
        .row([Value::Int64(3), Value::Float64(5.0)])
        .row([Value::Int64(4), Value::Float64(6.0)])
        .build()
        .unwrap();
    let regions = TableBuilder::new(Schema::new(vec![
        Field::int64("rcid"),
        Field::utf8("region"),
    ]))
    .row([Value::Int64(1), Value::str("EU")])
    .row([Value::Int64(2), Value::str("US")])
    .row([Value::Int64(3), Value::str("US")])
    .row([Value::Int64(3), Value::str("APAC")])
    .build()
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("means", means).unwrap();
    catalog.register("regions", regions).unwrap();
    let plan = PlanNode::random_table(mcdbr::exec::plan::scalar_random_table(
        "Losses",
        "means",
        Arc::new(NormalVg),
        vec![Expr::col("m"), Expr::lit(1.0)],
        &["cid"],
        "val",
        1,
    ))
    .filter(Expr::col("cid").lt(Expr::lit(4i64)))
    .join(PlanNode::scan("regions"), vec![("cid", "rcid")])
    .filter(Expr::col("val").gt(Expr::lit(3.0)))
    .project(vec![
        ("region", Expr::col("region")),
        ("loss", Expr::col("val")),
        (
            "scaled",
            Expr::col("val").mul(Expr::lit(1.5)).add(Expr::lit(0.25)),
        ),
    ]);
    (catalog, plan)
}

#[test]
fn blocks_match_from_scratch_execution_for_simple_and_complex_plans() {
    let (catalog, complex) = complex_case();
    let losses = customer_losses_query(None);
    let losses_catalog = customer_losses_catalog(25, (1.0, 5.0), 9).unwrap();
    for (plan, cat, seed) in [
        (&complex, &catalog, 17u64),
        (&losses.plan, &losses_catalog, 23u64),
    ] {
        let mut session = ExecSession::prepare(plan, cat, seed).unwrap();
        assert!(session.is_cached());
        for (base, n) in [(0u64, 32usize), (32, 16), (48, 1), (10_000, 8)] {
            let block = session.instantiate_block(cat, base, n).unwrap();
            let scratch = exec_from_scratch(plan, cat, seed, base, n);
            assert_bit_identical(&block, &scratch);
        }
        assert_eq!(
            session.plan_executions(),
            1,
            "deterministic work ran more than once"
        );
        assert_eq!(session.blocks_materialized(), 4);
    }
}

#[test]
fn blocks_are_identical_across_replenishment_boundaries() {
    // The §9 replenishment pattern: consecutive blocks [0,B), [B,2B), [2B,3B)
    // concatenated must equal one long materialization [0,3B) — so a looper
    // that replenishes twice sees exactly the values a single big block would
    // have carried.
    let (catalog, plan) = complex_case();
    let seed = 5;
    let block = 24usize;
    let mut session = ExecSession::prepare(&plan, &catalog, seed).unwrap();
    let long = exec_from_scratch(&plan, &catalog, seed, 0, 3 * block);
    for step in 0..3u64 {
        let b = session
            .instantiate_block(&catalog, step * block as u64, block)
            .unwrap();
        // Compare each bundle's random values to the matching slice of the
        // long run.  (Presence-filtered bundles can differ in survivorship
        // between a sub-block and the long block, so restrict the check to
        // the replenishment-legal plans below for full-set equality.)
        for (sb, lb) in b.bundles.iter().zip(&long.bundles) {
            for (sv, lv) in sb.values.iter().zip(&lb.values) {
                if let (
                    BundleValue::Random {
                        values: svals,
                        seed: ss,
                        base_pos,
                        ..
                    },
                    BundleValue::Random {
                        values: lvals,
                        seed: ls,
                        ..
                    },
                ) = (sv, lv)
                {
                    assert_eq!(ss, ls);
                    assert_eq!(*base_pos, step * block as u64);
                    let lo = (step as usize) * block;
                    assert_eq!(&lvals.to_values()[lo..lo + block], &svals.to_values()[..]);
                }
            }
        }
    }

    // For a replenishment-legal plan (no random-attribute filters below the
    // looper, paper App. A) every sub-block equals the long run slice-for-
    // slice including bundle survivorship.
    let losses_catalog = customer_losses_catalog(10, (2.0, 6.0), 3).unwrap();
    let q = customer_losses_query(None);
    let mut session = ExecSession::prepare(&q.plan, &losses_catalog, 7).unwrap();
    let long = exec_from_scratch(&q.plan, &losses_catalog, 7, 0, 90);
    for step in 0..3u64 {
        let b = session
            .instantiate_block(&losses_catalog, step * 30, 30)
            .unwrap();
        let scratch = exec_from_scratch(&q.plan, &losses_catalog, 7, step * 30, 30);
        assert_bit_identical(&b, &scratch);
        assert_eq!(b.bundles.len(), long.bundles.len());
    }
}

#[test]
fn thread_counts_never_change_a_block() {
    let (catalog, plan) = complex_case();
    let reference = ExecSession::prepare(&plan, &catalog, 31)
        .unwrap()
        .with_threads(1)
        .instantiate_block(&catalog, 0, 128)
        .unwrap();
    for threads in [2, 3, 4, 16] {
        let parallel = ExecSession::prepare(&plan, &catalog, 31)
            .unwrap()
            .with_threads(threads)
            .instantiate_block(&catalog, 0, 128)
            .unwrap();
        assert_bit_identical(&reference, &parallel);
    }
}

#[test]
fn shard_counts_never_change_a_block() {
    // The sharded-backend contract: for every shard count × thread count,
    // every block — including consecutive replenishment-style blocks — is
    // bit-identical to in-process execution and to the one-shot executor.
    let (catalog, plan) = complex_case();
    let seed = 77;
    let blocks = [(0u64, 24usize), (24, 24), (48, 24), (10_000, 8)];
    let mut reference = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(Arc::new(InProcessBackend::new()));
    let expected: Vec<_> = blocks
        .iter()
        .map(|&(base, n)| reference.instantiate_block(&catalog, base, n).unwrap())
        .collect();
    for shards in [1usize, 2, 3, 7] {
        for threads in [1usize, 2, 3, 7] {
            let backend = Arc::new(ShardedBackend::new(shards));
            let mut session = ExecSession::prepare(&plan, &catalog, seed)
                .unwrap()
                .with_threads(threads)
                .with_backend(backend.clone());
            for (&(base, n), want) in blocks.iter().zip(&expected) {
                let got = session.instantiate_block(&catalog, base, n).unwrap();
                assert_bit_identical(want, &got);
                assert_bit_identical(want, &exec_from_scratch(&plan, &catalog, seed, base, n));
            }
            assert!(backend.shard_stats().shards_spawned > 0);
            assert_eq!(session.plan_executions(), 1);
        }
    }
}

#[test]
fn sharded_cache_hits_stay_bit_identical() {
    // A cache-hit session re-bound to a fresh master seed and run on a
    // sharded backend must equal an uncached, in-process session at that
    // seed — the composition of the two tentpole contracts.
    let (catalog, plan) = complex_case();
    let cache = SessionCache::new();
    let _ = cache.session(&plan, &catalog, 1).unwrap(); // warm (seed 1)
    for (shards, seed) in [(2usize, 9u64), (3, 0xBEEF), (7, 1)] {
        let mut hit = cache
            .session(&plan, &catalog, seed)
            .unwrap()
            .with_backend(Arc::new(ShardedBackend::new(shards)));
        assert!(hit.skeleton_hit());
        assert_eq!(hit.plan_executions(), 0, "cache hit skips phase 1");
        let mut fresh = ExecSession::prepare(&plan, &catalog, seed)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()));
        for (base, n) in [(0u64, 32usize), (32, 16), (5000, 8)] {
            let a = hit.instantiate_block(&catalog, base, n).unwrap();
            let b = fresh.instantiate_block(&catalog, base, n).unwrap();
            assert_bit_identical(&a, &b);
        }
    }
}

#[test]
fn sharded_tpch_join_blocks_match_from_scratch() {
    // The Appendix D join workload through shards: cross-shard bundles (a
    // deterministic side joined to uncertain streams) regenerate foreign
    // streams locally and must still merge into the exact executor output.
    let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
    let q = w.total_loss_query();
    for shards in [2usize, 5] {
        let mut session = ExecSession::prepare(&q.plan, &w.catalog, 99)
            .unwrap()
            .with_backend(Arc::new(ShardedBackend::new(shards)));
        for (base, n) in [(0u64, 20usize), (20, 20)] {
            let block = session.instantiate_block(&w.catalog, base, n).unwrap();
            assert_bit_identical(&block, &exec_from_scratch(&q.plan, &w.catalog, 99, base, n));
        }
    }
}

#[test]
fn columnar_blocks_match_the_row_reference_path_for_every_shard_and_thread_count() {
    // The columnar-tentpole referee: `instantiate_block_rows` is the
    // pre-change row path kept verbatim; the pooled columnar path — on the
    // in-process backend and on every sharded configuration — must
    // reproduce its output bit for bit, on the multi-operator plan and the
    // Appendix D join workload alike.
    let (catalog, plan) = complex_case();
    let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
    let join = w.total_loss_query();
    for (plan, cat, seed) in [(&plan, &catalog, 55u64), (&join.plan, &w.catalog, 91u64)] {
        let session = ExecSession::prepare(plan, cat, seed).unwrap();
        let prefix = session.prefix().unwrap();
        for (base, n) in [(0u64, 32usize), (32, 16), (9000, 8)] {
            let reference = instantiate_block_rows(prefix, 1, base, n).unwrap();
            let pool = BlockBufferPool::new();
            for threads in [1usize, 2, 7] {
                let columnar = InProcessBackend::new()
                    .instantiate_block(prefix, &pool, threads, base, n)
                    .unwrap();
                assert_bit_identical(&reference, &columnar);
            }
            for shards in [1usize, 2, 3, 7] {
                for threads in [1usize, 2] {
                    let sharded = ShardedBackend::new(shards)
                        .instantiate_block(prefix, &pool, threads, base, n)
                        .unwrap();
                    assert_bit_identical(&reference, &sharded);
                }
            }
            assert!(
                pool.buffer_reuses() > 0,
                "repeated blocks over one pool must recycle buffers"
            );
        }
    }
}

#[test]
fn zero_value_blocks_are_well_formed_on_both_backends() {
    // num_values == 0 must be a first-class input, not incidental behavior:
    // a well-formed, empty-repetition BundleSet on the in-process and
    // sharded backends alike, agreeing with the one-shot executor.
    let losses_catalog = customer_losses_catalog(6, (1.0, 4.0), 3).unwrap();
    let q = customer_losses_query(None);
    let scratch = exec_from_scratch(&q.plan, &losses_catalog, 13, 0, 0);
    for backend in [
        Arc::new(InProcessBackend::new()) as Arc<dyn ExecBackend>,
        Arc::new(ShardedBackend::new(3)) as Arc<dyn ExecBackend>,
    ] {
        let mut session = ExecSession::prepare(&q.plan, &losses_catalog, 13)
            .unwrap()
            .with_backend(Arc::clone(&backend));
        let block = session.instantiate_block(&losses_catalog, 0, 0).unwrap();
        assert_eq!(block.num_reps, 0, "backend {}", backend.name());
        assert_eq!(block.schema, scratch.schema);
        assert_bit_identical(&block, &scratch);
        for bundle in &block.bundles {
            for value in &bundle.values {
                assert!(matches!(value.materialized_len(), None | Some(0)));
            }
        }
        // A zero block then a real one: the session stays fully usable.
        let real = session.instantiate_block(&losses_catalog, 0, 8).unwrap();
        assert_bit_identical(
            &real,
            &exec_from_scratch(&q.plan, &losses_catalog, 13, 0, 8),
        );
    }
}

#[test]
fn process_backend_blocks_are_bit_identical_for_every_worker_and_thread_count() {
    // The multi-process dispatch contract: for worker counts {1, 2, 3} ×
    // thread counts, every block — consecutive replenishment-style windows
    // included — merged from `mcdbr-worker` OS processes is bit-identical
    // to the in-process backend, the sharded backend, and the one-shot
    // executor.
    let (catalog, plan) = complex_case();
    let seed = 77;
    let blocks = [(0u64, 24usize), (24, 24), (48, 24), (10_000, 8)];
    let mut reference = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(Arc::new(InProcessBackend::new()));
    let expected: Vec<_> = blocks
        .iter()
        .map(|&(base, n)| reference.instantiate_block(&catalog, base, n).unwrap())
        .collect();
    for workers in [1usize, 2, 3] {
        for threads in [1usize, 2, 7] {
            let backend = Arc::new(ProcessBackend::new(workers));
            let mut session = ExecSession::prepare(&plan, &catalog, seed)
                .unwrap()
                .with_threads(threads)
                .with_backend(backend.clone());
            let mut sharded = ExecSession::prepare(&plan, &catalog, seed)
                .unwrap()
                .with_threads(threads)
                .with_backend(Arc::new(ShardedBackend::new(workers)));
            for (&(base, n), want) in blocks.iter().zip(&expected) {
                let got = session.instantiate_block(&catalog, base, n).unwrap();
                assert_bit_identical(want, &got);
                assert_bit_identical(want, &sharded.instantiate_block(&catalog, base, n).unwrap());
                assert_bit_identical(want, &exec_from_scratch(&plan, &catalog, seed, base, n));
            }
            let stats = backend.shard_stats();
            assert!(
                stats.tasks_dispatched >= blocks.len(),
                "{workers}x{threads}: every block must cross the wire"
            );
            assert!(stats.wire_bytes_sent > 0 && stats.wire_bytes_received > 0);
            assert!(
                stats.worker_warm_hits > 0,
                "{workers}x{threads}: later blocks must hit warm workers"
            );
            assert_eq!(session.plan_executions(), 1);
        }
    }
}

#[test]
fn process_backend_cache_hits_skip_phase_one_on_both_sides_of_the_wire() {
    // Composition of the session-cache and dispatch contracts: a
    // coordinator-side cache hit (fresh master seed, phase 1 skipped) run
    // on a process backend must equal an uncached in-process session, and
    // the *workers'* own caches must serve the later blocks warm.
    let (catalog, plan) = complex_case();
    let cache = SessionCache::new();
    let backend = Arc::new(ProcessBackend::new(2));
    let _ = cache.session(&plan, &catalog, 1).unwrap(); // warm (seed 1)
    for seed in [9u64, 0xBEEF] {
        let mut hit = cache
            .session(&plan, &catalog, seed)
            .unwrap()
            .with_backend(backend.clone());
        assert!(hit.skeleton_hit());
        assert_eq!(hit.plan_executions(), 0, "cache hit skips phase 1");
        let mut fresh = ExecSession::prepare(&plan, &catalog, seed)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()));
        for (base, n) in [(0u64, 32usize), (32, 16), (5000, 8)] {
            let a = hit.instantiate_block(&catalog, base, n).unwrap();
            let b = fresh.instantiate_block(&catalog, base, n).unwrap();
            assert_bit_identical(&a, &b);
        }
    }
    let stats = backend.shard_stats();
    // Both loops share one plan key and one worker pool: after each
    // worker's first (cold) task, every later task skipped phase 1 on the
    // worker side too.
    assert!(
        stats.worker_warm_hits > 0,
        "warm workers must skip phase 1: {stats:?}"
    );
    assert!(stats.tasks_dispatched > stats.worker_warm_hits);
}

#[test]
fn process_backend_survives_forced_worker_kills_with_re_dispatch() {
    // Crash-recovery contract: killing worker processes between (and
    // during) blocks forces the broken-pipe path — respawn, re-send the
    // plan to the now-cold worker, re-dispatch the in-flight task — and
    // the merged output stays bit-identical throughout.
    let (catalog, plan) = complex_case();
    let seed = 31;
    let backend = Arc::new(ProcessBackend::new(2));
    let mut session = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(backend.clone());
    let mut reference = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(Arc::new(InProcessBackend::new()));
    for (round, (base, n)) in [(0u64, 20usize), (20, 20), (40, 20), (60, 12)]
        .into_iter()
        .enumerate()
    {
        if round > 0 {
            // Alternate killing one worker and the whole pool.
            backend.kill_worker(round % 2);
            if round == 2 {
                backend.kill_worker(0);
                backend.kill_worker(1);
            }
        }
        let got = session.instantiate_block(&catalog, base, n).unwrap();
        let want = reference.instantiate_block(&catalog, base, n).unwrap();
        assert_bit_identical(&want, &got);
        assert_bit_identical(&want, &exec_from_scratch(&plan, &catalog, seed, base, n));
    }
    let stats = backend.shard_stats();
    assert!(
        stats.worker_respawns >= 3,
        "every kill must surface as a respawn + re-dispatch: {stats:?}"
    );
    assert_eq!(session.plan_executions(), 1);
}

#[test]
fn process_backend_engine_runs_match_in_process_engines() {
    // End to end through the MCDB engine: per-repetition samples computed
    // over process-dispatched blocks equal the in-process engine's exactly
    // (aggregation is local on both; the blocks are what crossed the wire).
    let catalog = customer_losses_catalog(12, (1.0, 4.0), 2).unwrap();
    let q = customer_losses_query(Some(9));
    let backend = Arc::new(ProcessBackend::new(2));
    let mut process_engine = McdbEngine::new().with_backend(backend.clone());
    let mut inproc_engine = McdbEngine::new().with_backend(Arc::new(InProcessBackend::new()));
    let a = process_engine.run_samples(&q, &catalog, 64, 42).unwrap();
    let b = inproc_engine.run_samples(&q, &catalog, 64, 42).unwrap();
    assert_eq!(a.group_columns, b.group_columns);
    for ((ka, va), (kb, vb)) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ka, kb);
        assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
    assert!(process_engine.tasks_dispatched() > 0);
    assert!(process_engine.workers_spawned() >= 1);
    let (sent, received) = process_engine.wire_bytes();
    assert!(sent > 0 && received > 0);
}

#[test]
fn tiny_page_cache_and_content_addressed_fetch_stay_bit_identical_across_backends() {
    // The paged-storage contract composed with content-addressed shipping:
    // with the global page cache forced far below the catalog's page count
    // (every scan misses, decodes, and evicts), all three backends must
    // still produce bit-identical blocks — cold (the first process-backend
    // task ships the Plan frame plus every referenced table's pages), warm
    // (repeat tasks ship only hash headers), and after a forced kill of
    // every worker (respawned workers are cold again and re-fetch tables
    // through the NeedTables ladder).
    use mcdbr::storage::BufferPool;
    let catalog = customer_losses_catalog(2_000, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(120i64)));
    let seed = 63;
    let blocks = [(0u64, 16usize), (16, 16), (32, 8)];
    assert!(
        catalog.get("means").unwrap().pages().len() > 2,
        "catalog must span more pages than the forced budget"
    );

    let pool = BufferPool::global();
    let saved = pool.budget();
    pool.set_budget(2);
    let baseline = pool.stats();

    let mut reference = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(Arc::new(InProcessBackend::new()));
    let expected: Vec<_> = blocks
        .iter()
        .map(|&(base, n)| reference.instantiate_block(&catalog, base, n).unwrap())
        .collect();

    let process = Arc::new(ProcessBackend::new(2));
    let mut sharded_session = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(Arc::new(ShardedBackend::new(3)));
    let mut process_session = ExecSession::prepare(&plan, &catalog, seed)
        .unwrap()
        .with_backend(process.clone());

    let mut cold_sent = 0u64;
    let mut warm_sent = 0u64;
    for (i, &(base, n)) in blocks.iter().enumerate() {
        if i == 2 {
            // Kill the whole pool: the respawned workers lost their
            // hash-keyed table stores and must re-fetch everything.
            process.kill_worker(0);
            process.kill_worker(1);
        }
        let before = process.shard_stats();
        let got = process_session
            .instantiate_block(&catalog, base, n)
            .unwrap();
        let sent = process.shard_stats().since(before).wire_bytes_sent;
        match i {
            0 => cold_sent = sent,
            1 => warm_sent = sent,
            _ => {}
        }
        assert_bit_identical(&expected[i], &got);
        assert_bit_identical(
            &expected[i],
            &sharded_session
                .instantiate_block(&catalog, base, n)
                .unwrap(),
        );
    }
    assert!(
        warm_sent < cold_sent,
        "warm dispatch ({warm_sent} bytes) must undercut the cold table \
         shipment ({cold_sent} bytes)"
    );
    let stats = process.shard_stats();
    assert!(
        stats.worker_respawns >= 2,
        "killing the pool must surface as respawns: {stats:?}"
    );
    let delta = pool.stats().since(&baseline);
    assert!(
        delta.pool_evictions > 0,
        "a 2-frame budget under a multi-page catalog must evict: {delta:?}"
    );
    pool.set_budget(saved);
}

#[test]
fn disk_backed_tables_and_persistent_worker_stores_stay_bit_identical_across_backends() {
    // The durable-pages contract end to end: the catalog's sealed pages are
    // explicitly spilled to heap files (so zero sealed bytes stay resident),
    // the global page cache is forced to 2 frames (so scans continually
    // evict and re-read through the checksummed disk records), and all
    // three backends must still produce blocks bit-identical to the plain
    // in-memory path.  Worker processes additionally run with their own
    // `MCDBR_DATA_DIR`, so their hash-keyed table stores persist across a
    // forced kill: the respawned pool answers the re-sent plan's
    // `NeedTables` from disk and the repeated dispatch ships headers, not
    // table pages.
    use mcdbr::storage::{BufferPool, Pager};
    let catalog_mem = customer_losses_catalog(2_000, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(150i64)));
    let seed = 77;
    let blocks = [(0u64, 16usize), (16, 16), (32, 8)];

    // A disk-backed twin of the catalog: same rows, same content hashes,
    // but every sealed page lives in a heap file under a private pager.
    let spill_root =
        std::env::temp_dir().join(format!("mcdbr-determinism-spill-{}", std::process::id()));
    let pager: &'static Pager = Box::leak(Box::new(Pager::new(&spill_root).unwrap()));
    let mut catalog_disk = Catalog::new();
    for name in catalog_mem.table_names() {
        let mut table = catalog_mem.get(name).unwrap().clone();
        // Under the MCDBR_DATA_DIR CI matrix the global pager already
        // spilled these pages at seal time and this explicit spill is a
        // no-op — the scan-from-disk property holds either way.
        let resident_before = table.resident_sealed_bytes();
        let moved = table.spill_with(pager).unwrap();
        if resident_before > 0 {
            assert!(moved > 0, "{name}: a multi-page table must spill pages");
        }
        assert_eq!(
            table.resident_sealed_bytes(),
            0,
            "{name}: spilling must leave no sealed bytes resident"
        );
        assert_eq!(
            table.content_hash(),
            catalog_mem.get(name).unwrap().content_hash(),
            "{name}: spilling must not change content identity"
        );
        catalog_disk.register(name, table).unwrap();
    }
    assert!(
        catalog_disk.get("means").unwrap().pages().len() > 2,
        "catalog must span more pages than the forced budget"
    );

    let pool = BufferPool::global();
    let saved = pool.budget();
    pool.set_budget(2);
    let disk_reads_before = pager.stats().disk_reads + Pager::global_stats().disk_reads;

    // Reference: the fully in-memory catalog on the in-process backend.
    let mut reference = ExecSession::prepare(&plan, &catalog_mem, seed)
        .unwrap()
        .with_backend(Arc::new(InProcessBackend::new()));
    let expected: Vec<_> = blocks
        .iter()
        .map(|&(base, n)| reference.instantiate_block(&catalog_mem, base, n).unwrap())
        .collect();

    // Workers get a scratch data dir of their own: their table stores gain
    // the persistent disk tier without touching this process's pager mode.
    let worker_root =
        std::env::temp_dir().join(format!("mcdbr-determinism-workers-{}", std::process::id()));
    let process = Arc::new(
        ProcessBackend::new(2).with_worker_env("MCDBR_DATA_DIR", worker_root.display().to_string()),
    );
    let mut inproc_session = ExecSession::prepare(&plan, &catalog_disk, seed)
        .unwrap()
        .with_backend(Arc::new(InProcessBackend::new()));
    let mut sharded_session = ExecSession::prepare(&plan, &catalog_disk, seed)
        .unwrap()
        .with_backend(Arc::new(ShardedBackend::new(3)));
    let mut process_session = ExecSession::prepare(&plan, &catalog_disk, seed)
        .unwrap()
        .with_backend(process.clone());

    let mut cold_sent = 0u64;
    let mut respawn_sent = 0u64;
    for (i, &(base, n)) in blocks.iter().enumerate() {
        if i == 2 {
            // Kill the whole pool.  Respawned workers are cold in memory
            // but warm on disk: the re-sent plan's NeedTables must come
            // back empty and no table pages may cross the wire again.
            process.kill_worker(0);
            process.kill_worker(1);
        }
        let before = process.shard_stats();
        let got = process_session
            .instantiate_block(&catalog_disk, base, n)
            .unwrap();
        let sent = process.shard_stats().since(before).wire_bytes_sent;
        match i {
            0 => cold_sent = sent,
            2 => respawn_sent = sent,
            _ => {}
        }
        assert_bit_identical(&expected[i], &got);
        assert_bit_identical(
            &expected[i],
            &inproc_session
                .instantiate_block(&catalog_disk, base, n)
                .unwrap(),
        );
        assert_bit_identical(
            &expected[i],
            &sharded_session
                .instantiate_block(&catalog_disk, base, n)
                .unwrap(),
        );
    }
    assert!(
        respawn_sent < cold_sent / 4,
        "a respawned worker pool with a persistent table store must ship \
         headers, not pages: respawn {respawn_sent} bytes vs cold {cold_sent}"
    );
    let stats = process.shard_stats();
    assert!(
        stats.worker_respawns >= 2,
        "killing the pool must surface as respawns: {stats:?}"
    );
    assert!(
        pager.stats().disk_reads + Pager::global_stats().disk_reads > disk_reads_before,
        "a 2-frame budget over disk-backed pages must read from disk"
    );
    pool.set_budget(saved);
    drop((reference, inproc_session, sharded_session, process_session));
    drop((catalog_mem, catalog_disk, process));
    let _ = std::fs::remove_dir_all(&spill_root);
    let _ = std::fs::remove_dir_all(&worker_root);
}

#[test]
fn parallel_aggregation_is_bit_identical_to_sequential() {
    let (catalog, plan) = complex_case();
    let set = ExecSession::prepare(&plan, &catalog, 13)
        .unwrap()
        .instantiate_block(&catalog, 0, 256)
        .unwrap();
    let agg = mcdbr::exec::AggregateSpec::sum(Expr::col("loss"), "total");
    let group = vec!["region".to_string()];
    let seq = evaluate_aggregate_threads(&set, &agg, &group, None, 1).unwrap();
    for threads in [2, 5, 32] {
        let par = evaluate_aggregate_threads(&set, &agg, &group, None, threads).unwrap();
        assert_eq!(seq.group_columns, par.group_columns);
        assert_eq!(seq.groups.len(), par.groups.len());
        for ((ka, va), (kb, vb)) in seq.groups.iter().zip(&par.groups) {
            assert_eq!(ka, kb);
            assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
    // And the convenience wrapper (default threads) agrees too.
    let default = evaluate_aggregate(&set, &agg, &group, None).unwrap();
    assert_eq!(default.groups, seq.groups);
}

#[test]
fn vectorized_kernels_are_bit_identical_to_forced_scalar_across_backends() {
    // The kernel-mode contract: Auto (vectorized predicate masks, computed
    // columns, and selection-vector aggregation) and ForceScalar (the
    // retained scalar row loop) must produce bit-identical bundle sets and
    // aggregate samples on every backend, across consecutive
    // replenishment-style blocks.  (The process backend's workers keep
    // their own process-global mode, so that leg additionally pins the
    // coordinator's scalar path against worker-side vectorized blocks.)
    use mcdbr::exec::{set_kernel_mode, KernelMode};
    let (catalog, plan) = complex_case();
    let seed = 41;
    let blocks = [(0u64, 24usize), (24, 24), (48, 24), (7000, 9)];
    let agg = mcdbr::exec::AggregateSpec::sum(Expr::col("loss"), "total");
    let group = vec!["region".to_string()];
    let pred = Expr::col("scaled").lt(Expr::lit(9.0));

    let run = |mode: KernelMode| {
        set_kernel_mode(mode);
        let mut out = Vec::new();
        for backend in [
            Arc::new(InProcessBackend::new()) as Arc<dyn ExecBackend>,
            Arc::new(ShardedBackend::new(3)) as Arc<dyn ExecBackend>,
            Arc::new(ProcessBackend::new(2)) as Arc<dyn ExecBackend>,
        ] {
            let mut session = ExecSession::prepare(&plan, &catalog, seed)
                .unwrap()
                .with_threads(2)
                .with_backend(backend);
            for &(base, n) in &blocks {
                let set = session.instantiate_block(&catalog, base, n).unwrap();
                let samples =
                    evaluate_aggregate_threads(&set, &agg, &group, Some(&pred), 3).unwrap();
                out.push((set, samples));
            }
        }
        set_kernel_mode(KernelMode::Auto);
        out
    };
    let auto = run(KernelMode::Auto);
    let scalar = run(KernelMode::ForceScalar);
    assert_eq!(auto.len(), scalar.len());
    for ((sa, ra), (ss, rs)) in auto.iter().zip(&scalar) {
        assert_bit_identical(sa, ss);
        assert_eq!(ra.group_columns, rs.group_columns);
        assert_eq!(ra.groups.len(), rs.groups.len());
        for ((ka, va), (kb, vb)) in ra.groups.iter().zip(&rs.groups) {
            assert_eq!(ka, kb);
            assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn tpch_join_workload_blocks_match_from_scratch() {
    // The Appendix D workload: an uncertain order-amount table joined to a
    // deterministic lineitem-derived side, at test scale.
    let w = TpchWorkload::generate(TpchConfig::test_scale()).unwrap();
    let q = w.total_loss_query();
    let mut session = ExecSession::prepare(&q.plan, &w.catalog, 99).unwrap();
    assert!(session.is_cached());
    for (base, n) in [(0u64, 20usize), (20, 20), (40, 5)] {
        let block = session.instantiate_block(&w.catalog, base, n).unwrap();
        let scratch = exec_from_scratch(&q.plan, &w.catalog, 99, base, n);
        assert_bit_identical(&block, &scratch);
    }
    assert_eq!(session.plan_executions(), 1);
}

#[test]
fn cache_hits_skip_phase_one_and_stay_bit_identical_across_seeds() {
    // The tentpole contract: for a repeated (plan, catalog) pair with a
    // *fresh master seed*, phase 1 is skipped — skeleton_hits increments and
    // plan_executions stays flat — and every block is bit-identical to an
    // uncached ExecSession::prepare at the same seed.
    let (catalog, plan) = complex_case();
    let cache = SessionCache::new();
    let mut total_plan_executions = 0usize;
    for (i, seed) in [7u64, 99, 0xFEED].into_iter().enumerate() {
        let mut cached = cache.session(&plan, &catalog, seed).unwrap();
        total_plan_executions += cached.plan_executions();
        assert_eq!(cached.skeleton_hit(), i > 0);
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (i, 1));
        let mut fresh = ExecSession::prepare(&plan, &catalog, seed).unwrap();
        for (base, n) in [(0u64, 32usize), (32, 16), (5000, 8)] {
            let a = cached.instantiate_block(&catalog, base, n).unwrap();
            let b = fresh.instantiate_block(&catalog, base, n).unwrap();
            assert_bit_identical(&a, &b);
            // And against the one-shot executor, closing the triangle.
            assert_bit_identical(&a, &exec_from_scratch(&plan, &catalog, seed, base, n));
        }
    }
    assert_eq!(
        total_plan_executions, 1,
        "three sessions, one skeleton pass: plan_executions must stay flat"
    );
}

#[test]
fn cache_hits_are_thread_count_independent() {
    let (catalog, plan) = complex_case();
    let cache = SessionCache::new();
    let reference = cache
        .session(&plan, &catalog, 31)
        .unwrap()
        .with_threads(1)
        .instantiate_block(&catalog, 0, 128)
        .unwrap();
    for threads in [2, 4, 16] {
        // Every one of these is a cache hit materialized under a different
        // worker count.
        let block = cache
            .session(&plan, &catalog, 31)
            .unwrap()
            .with_threads(threads)
            .instantiate_block(&catalog, 0, 128)
            .unwrap();
        assert_bit_identical(&reference, &block);
    }
    assert_eq!(cache.skeleton_hits(), 3);
}

#[test]
fn catalog_changes_invalidate_cached_skeletons() {
    let mut catalog = customer_losses_catalog(8, (1.0, 4.0), 5).unwrap();
    let q = customer_losses_query(None);
    let cache = SessionCache::new();
    let first = cache.session(&q.plan, &catalog, 3).unwrap();
    assert_eq!(first.prefix().unwrap().num_streams(), 8);

    // Replace the parameter table with a smaller one: the epoch changes, the
    // next lookup misses, and the rebuilt skeleton reflects the new catalog
    // (a stale hit would still carry 8 streams).
    let replacement = customer_losses_catalog(3, (1.0, 4.0), 5).unwrap();
    let means = replacement.get("means").unwrap().clone();
    catalog.register_or_replace("means", means);
    let second = cache.session(&q.plan, &catalog, 3).unwrap();
    assert!(!second.skeleton_hit());
    assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 2));
    assert_eq!(second.prefix().unwrap().num_streams(), 3);

    // An unrelated-table registration also invalidates (epochs are
    // content-conservative, not table-reference-exact)...
    let extra = TableBuilder::new(Schema::new(vec![Field::int64("x")]))
        .row([Value::Int64(1)])
        .build()
        .unwrap();
    catalog.register("unrelated", extra).unwrap();
    let mut third = cache.session(&q.plan, &catalog, 4).unwrap();
    assert!(!third.skeleton_hit());
    // ...and the rebuilt skeleton still matches a from-scratch execution.
    let block = third.instantiate_block(&catalog, 0, 16).unwrap();
    assert_bit_identical(&block, &exec_from_scratch(&q.plan, &catalog, 4, 0, 16));
}

#[test]
fn engine_results_are_unchanged_by_the_session_port() {
    // The MCDB engine now runs on sessions; its per-repetition samples must
    // still equal aggregation over a from-scratch executor run.
    let catalog = customer_losses_catalog(12, (1.0, 4.0), 2).unwrap();
    let q = customer_losses_query(Some(9));
    let mut engine = McdbEngine::new();
    let via_engine = engine.run_samples(&q, &catalog, 64, 42).unwrap();
    let scratch = exec_from_scratch(&q.plan, &catalog, 42, 0, 64);
    let direct = evaluate_aggregate(
        &scratch,
        &q.aggregate,
        &q.group_by,
        q.final_predicate.as_ref(),
    )
    .unwrap();
    assert_eq!(via_engine.groups.len(), direct.groups.len());
    for ((ka, va), (kb, vb)) in via_engine.groups.iter().zip(&direct.groups) {
        assert_eq!(ka, kb);
        assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
