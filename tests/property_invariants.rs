//! Property-style tests over the core invariants of the system: quantile /
//! order-statistic conventions, frequency tables, parameter theory identities,
//! TS-seed bookkeeping, and the purge/clone/perturb loop.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these use a small seeded case generator over the repository's own
//! [`Pcg64`]: each property is checked for 64 pseudorandom configurations,
//! and every failure message carries the case seed so a case can be replayed
//! exactly.

use mcdbr::core::params::{h_c, staged_parameters_with_m};
use mcdbr::core::{IndependentSumModel, ScalarCloner, TsSeed};
use mcdbr::exec::kernels::{numeric_values, predicate_mask, Lane, NumVals};
use mcdbr::exec::Expr;
use mcdbr::mcdb::ResultDistribution;
use mcdbr::prng::Pcg64;
use mcdbr::risk::value_at_risk;
use mcdbr::storage::{
    BufferPool, Column, DataType, Field, Mask, Page, Schema, SelVec, Table, Tuple, Value,
};
use mcdbr::vg::Distribution;

const CASES: u64 = 64;

/// Deterministic case generator: uniform helpers over ranges.
struct Gen {
    rng: Pcg64,
}

impl Gen {
    fn new(case: u64) -> Self {
        Gen {
            rng: Pcg64::new(0x70726f70 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }

    fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.rng.next_u64() % (hi - lo)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64_open() * (hi - lo)
    }

    fn vec_f64(&mut self, len_lo: usize, len_hi: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// The empirical quantile is monotone in the level and bracketed by the
/// sample extremes.
#[test]
fn quantiles_are_monotone() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let mut samples = g.vec_f64(2, 200, -1e6, 1e6);
        let (q1, q2) = (g.f64_in(0.01, 0.99), g.f64_in(0.01, 0.99));
        let dist = ResultDistribution::from_samples(&samples);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = dist.quantile(lo).unwrap();
        let b = dist.quantile(hi).unwrap();
        assert!(
            a <= b,
            "case {case}: quantile({lo}) = {a} > quantile({hi}) = {b}"
        );
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!(
            a >= samples[0] && b <= *samples.last().unwrap(),
            "case {case}: quantiles escape the sample range"
        );
    }
}

/// Frequency tables are proper probability vectors with sorted support.
#[test]
fn frequency_tables_sum_to_one() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let len = g.usize_in(1, 300);
        let floats: Vec<f64> = (0..len)
            .map(|_| g.usize_in(0, 200) as f64 - 100.0)
            .collect();
        let dist = ResultDistribution::from_samples(&floats);
        let ft = dist.frequency_table(0.0);
        let total: f64 = ft.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total = {total}");
        assert!(
            ft.windows(2).all(|w| w[0].0 < w[1].0),
            "case {case}: frequency table support not sorted"
        );
    }
}

/// VaR never exceeds expected shortfall computed at the VaR threshold.
#[test]
fn var_below_expected_shortfall() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let samples = g.vec_f64(10, 300, -1e3, 1e3);
        let p = g.f64_in(0.01, 0.5);
        let var = value_at_risk(&samples, p).unwrap();
        let tail: Vec<f64> = samples.iter().copied().filter(|&x| x >= var).collect();
        let es = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(es >= var - 1e-9, "case {case}: ES {es} < VaR {var}");
    }
}

/// Appendix C identities: the even split satisfies ∏ pᵢ = p and h_c stays
/// within [p, 1].
#[test]
fn staged_parameter_identities() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let n_total = g.usize_in(20, 5000);
        let p = g.f64_in(0.0005, 0.2);
        let m = g.usize_in(1, 8).min(n_total);
        let params = staged_parameters_with_m(n_total, p, m);
        let prod: f64 = params.step_probabilities().iter().product();
        assert!(
            (prod - p).abs() < 1e-9,
            "case {case}: ∏ pᵢ = {prod} vs p = {p}"
        );
        let ns: Vec<f64> = params.step_sizes().iter().map(|&n| n as f64).collect();
        let ps = params.step_probabilities();
        for c in [1.0, 2.0] {
            let h = h_c(&ns, &ps, c);
            assert!(h >= p - 1e-9 && h <= 1.0 + 1e-9, "case {case}: h_c = {h}");
        }
    }
}

/// TS-seed bookkeeping: `max_used` tracks every assignment and cloning copies
/// columns exactly.
#[test]
fn ts_seed_bookkeeping() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let num_versions = g.usize_in(1, 16);
        let mut ts = TsSeed::new(7, num_versions, 1_000);
        let num_ops = g.usize_in(0, 50);
        for _ in 0..num_ops {
            let v = g.usize_in(0, 16) % num_versions;
            let pos = g.u64_in(0, 500);
            ts.assign(v, pos);
            assert!(ts.max_used >= pos, "case {case}: max_used fell behind");
            assert_eq!(ts.assigned(v), pos, "case {case}: assignment lost");
        }
        let src = 0;
        for dst in 0..num_versions {
            ts.clone_version(dst, src);
        }
        assert!(
            (0..num_versions).all(|v| ts.assigned(v) == ts.assigned(src)),
            "case {case}: clone_version did not copy the column"
        );
    }
}

// ===== Vectorized kernel properties (the phase-2 columnar path) =====

/// A random numeric column of length `n`: `Float64` or `Int64`, with NaNs
/// (float only) and SQL NULLs injected at a per-case random density.
fn rand_column(g: &mut Gen, n: usize) -> Column {
    let mut col = Column::default();
    let null_density = g.f64_in(0.0, 0.4);
    let is_float = g.u64_in(0, 4) > 0; // mostly floats, sometimes ints
    let nan_density = if is_float { g.f64_in(0.0, 0.15) } else { 0.0 };
    for _ in 0..n {
        if g.rng.next_f64() < null_density {
            col.push_null();
        } else if is_float {
            if g.rng.next_f64() < nan_density {
                col.push_f64(f64::NAN);
            } else {
                col.push_f64(g.f64_in(-100.0, 100.0));
            }
        } else {
            col.push_value(&Value::Int64(g.u64_in(0, 200) as i64 - 100));
        }
    }
    col
}

/// A random comparison operand: a schema column or a numeric literal.
fn rand_operand(g: &mut Gen, names: &[&str]) -> Expr {
    match g.u64_in(0, 4) {
        0 => Expr::lit(Value::Float64(g.f64_in(-50.0, 50.0))),
        1 => Expr::lit(Value::Int64(g.u64_in(0, 100) as i64 - 50)),
        _ => Expr::col(names[g.usize_in(0, names.len())]),
    }
}

/// A random predicate tree over comparisons, `AND`/`OR`/`NOT`.
fn rand_pred(g: &mut Gen, names: &[&str], depth: usize) -> Expr {
    if depth == 0 || g.u64_in(0, 3) == 0 {
        let lhs = rand_operand(g, names);
        let rhs = rand_operand(g, names);
        return match g.u64_in(0, 6) {
            0 => lhs.eq(rhs),
            1 => lhs.not_eq(rhs),
            2 => lhs.lt(rhs),
            3 => lhs.lt_eq(rhs),
            4 => lhs.gt(rhs),
            _ => lhs.gt_eq(rhs),
        };
    }
    match g.u64_in(0, 3) {
        0 => rand_pred(g, names, depth - 1).and(rand_pred(g, names, depth - 1)),
        1 => rand_pred(g, names, depth - 1).or(rand_pred(g, names, depth - 1)),
        _ => rand_pred(g, names, depth - 1).not(),
    }
}

/// The branchless predicate kernels agree with the scalar `eval_bool` row
/// loop on every row of randomized schemas — random lengths (crossing the
/// 64-bit mask-word boundary), null densities, NaNs, and `Int64`/`Float64`
/// mixes — and `SelVec::from_mask` selects exactly the rows the scalar path
/// keeps.  Cases where the expression leaves the compiled subset decline to
/// the scalar loop by construction; the test additionally asserts the
/// kernels engage on a healthy majority so the subset cannot silently rot.
#[test]
fn predicate_kernels_and_selvec_match_scalar_eval_row() {
    let names = ["a", "b", "c"];
    let schema = Schema::new(
        names
            .iter()
            .map(|&n| Field::new(n, DataType::Float64))
            .collect(),
    );
    let mut engaged = 0u32;
    for case in 0..CASES {
        let mut g = Gen::new(0x6b65726e ^ case);
        let n = g.usize_in(1, 300);
        let cols: Vec<Column> = (0..names.len()).map(|_| rand_column(&mut g, n)).collect();
        let lanes: Vec<Lane<'_>> = cols.iter().map(Lane::Col).collect();
        let expr = rand_pred(&mut g, &names, 2);
        let Some(mask) = predicate_mask(&expr, &schema, &lanes, n) else {
            continue;
        };
        engaged += 1;
        let mut scalar_rows = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<Value> = cols.iter().map(|c| c.value_at(i)).collect();
            let want = expr.eval_bool(&schema, &row).unwrap();
            assert_eq!(
                mask.get(i),
                want,
                "case {case}: `{expr}` row {i} (row = {row:?})"
            );
            if want {
                scalar_rows.push(i as u32);
            }
        }
        let sel = SelVec::from_mask(&mask);
        assert_eq!(
            sel.indices(),
            &scalar_rows[..],
            "case {case}: `{expr}` selection vector diverged from the scalar filter"
        );
        assert_eq!(sel.len(), mask.count(), "case {case}");
        // Range views agree with the naive range filter.
        let (lo, hi) = {
            let a = g.usize_in(0, n + 1);
            let b = g.usize_in(0, n + 1);
            (a.min(b), a.max(b))
        };
        let want_range: Vec<u32> = scalar_rows
            .iter()
            .copied()
            .filter(|&i| (i as usize) >= lo && (i as usize) < hi)
            .collect();
        assert_eq!(
            sel.slice_in_range(lo, hi),
            &want_range[..],
            "case {case}: slice_in_range({lo}, {hi})"
        );
    }
    assert!(
        engaged > CASES as u32 / 2,
        "kernels engaged on only {engaged}/{CASES} cases — compiled subset regressed"
    );
}

/// The vectorized aggregand lane (`numeric_values`) is bit-identical to the
/// scalar `eval` + `as_f64` referee on null-free numeric columns, across
/// random arithmetic expression trees.
#[test]
fn numeric_value_lanes_match_scalar_eval_bitwise() {
    let names = ["x", "y"];
    let schema = Schema::new(
        names
            .iter()
            .map(|&n| Field::new(n, DataType::Float64))
            .collect(),
    );
    let mut engaged = 0u32;
    for case in 0..CASES {
        let mut g = Gen::new(0x61676772 ^ case);
        let n = g.usize_in(1, 200);
        let cols: Vec<Column> = (0..names.len())
            .map(|_| {
                let mut c = Column::default();
                for _ in 0..n {
                    c.push_f64(g.f64_in(-100.0, 100.0));
                }
                c
            })
            .collect();
        let lanes: Vec<Lane<'_>> = cols.iter().map(Lane::Col).collect();
        // x*k1 + y, x - y*k2, (x + y) * k — random small trees, division
        // only by nonzero literals (zero divisors decline to scalar).
        let x = Expr::col("x");
        let y = Expr::col("y");
        let k = Expr::lit(Value::Float64(g.f64_in(0.5, 4.0)));
        let expr = match g.u64_in(0, 4) {
            0 => x.mul(k).add(y),
            1 => x.sub(y.mul(k)),
            2 => x.add(y).mul(k),
            _ => x.div(k).add(y),
        };
        let Some(vals) = numeric_values(&expr, &schema, &lanes, n) else {
            continue;
        };
        engaged += 1;
        for i in 0..n {
            let row: Vec<Value> = cols.iter().map(|c| c.value_at(i)).collect();
            let want = expr.eval_f64(&schema, &row).unwrap();
            let got = match &vals {
                NumVals::Const(c) => *c,
                NumVals::Col(v) => v[i],
            };
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "case {case}: `{expr}` row {i}: {got} != {want}"
            );
        }
    }
    assert!(
        engaged > CASES as u32 / 2,
        "numeric lanes engaged on only {engaged}/{CASES} cases"
    );
}

/// Packed-mask word operations agree with the naive per-bit reference at
/// every length — especially lengths straddling the 64-bit word boundary,
/// where trailing-word garbage must never leak into counts or selections.
#[test]
fn mask_ops_match_naive_reference() {
    for case in 0..CASES {
        let mut g = Gen::new(0x6d61736b ^ case);
        // Cluster lengths around word boundaries half the time.
        let n = if g.u64_in(0, 2) == 0 {
            let w = g.usize_in(0, 4) * 64;
            (w + g.usize_in(0, 3)).max(1)
        } else {
            g.usize_in(1, 300)
        };
        let a_bits: Vec<bool> = (0..n).map(|_| g.rng.next_f64() < 0.5).collect();
        let b_bits: Vec<bool> = (0..n).map(|_| g.rng.next_f64() < 0.3).collect();
        let a = Mask::from_bools(&a_bits);
        let b = Mask::from_bools(&b_bits);
        assert_eq!(a.to_bools(), a_bits, "case {case}: roundtrip");
        assert_eq!(
            a.count(),
            a_bits.iter().filter(|&&x| x).count(),
            "case {case}: count"
        );
        let naive = |f: fn(bool, bool) -> bool| -> Vec<bool> {
            a_bits.iter().zip(&b_bits).map(|(&x, &y)| f(x, y)).collect()
        };
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.to_bools(), naive(|x, y| x && y), "case {case}: and");
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.to_bools(), naive(|x, y| x || y), "case {case}: or");
        let mut andn = a.clone();
        andn.and_not_assign(&b);
        assert_eq!(
            andn.to_bools(),
            naive(|x, y| x && !y),
            "case {case}: and_not"
        );
        let mut not = a.clone();
        not.not_assign();
        assert_eq!(
            not.to_bools(),
            a_bits.iter().map(|&x| !x).collect::<Vec<_>>(),
            "case {case}: not"
        );
        assert_eq!(
            not.count(),
            n - a.count(),
            "case {case}: trailing-word bits leaked into the complement count"
        );
        // SelVec over the mask selects exactly the set rows, in order.
        let sel = SelVec::from_mask(&a);
        let want: Vec<u32> = (0..n as u32).filter(|&i| a_bits[i as usize]).collect();
        assert_eq!(sel.indices(), &want[..], "case {case}: selvec");
    }
}

/// The scalar Gibbs cloner's invariants hold for arbitrary light-tailed
/// configurations: the requested number of tail samples comes back, every
/// sample clears the final cutoff, and cutoffs are non-decreasing.
#[test]
fn cloner_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let r = g.usize_in(2, 12);
        let n_total = g.usize_in(40, 200);
        let m = g.usize_in(1, 4);
        let l = g.usize_in(5, 40);
        let seed = g.u64_in(0, 1000);
        let model = IndependentSumModel::iid(Distribution::Normal { mean: 1.0, sd: 1.0 }, r);
        let cloner = ScalarCloner::new(model);
        let params = staged_parameters_with_m(n_total, 0.05, m);
        let report = cloner.run(&params, l, &mut Pcg64::new(seed));
        assert_eq!(report.tail_samples.len(), l, "case {case}");
        assert!(
            report.cutoffs.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "case {case}: cutoffs decreased: {:?}",
            report.cutoffs
        );
        let cutoff = report.quantile_estimate;
        assert!(
            report.tail_samples.iter().all(|&q| q >= cutoff - 1e-9),
            "case {case}: tail sample below the final cutoff"
        );
    }
}

// ---------------------------------------------------------------------------
// Paged storage: page codec identity, buffer-pool eviction transparency, and
// pin semantics, over randomized schemas and row sets (bit-exactness
// landmines included: NaN payloads, negative zero, infinities, nulls).

/// A random cell, optionally including raw-bit float specials.
fn rand_cell(g: &mut Gen, specials: bool) -> Value {
    match g.usize_in(0, if specials { 6 } else { 5 }) {
        0 => Value::Null,
        1 => Value::Int64(g.u64_in(0, 1 << 40) as i64 - (1 << 39)),
        2 => Value::Float64(g.f64_in(-1e9, 1e9)),
        3 => Value::Bool(g.u64_in(0, 2) == 1),
        4 => {
            let len = g.usize_in(0, 16);
            Value::str(
                (0..len)
                    .map(|_| char::from(b'a' + (g.u64_in(0, 26)) as u8))
                    .collect::<String>(),
            )
        }
        _ => [
            Value::Float64(f64::from_bits(0x7ff8_dead_beef_0001)),
            Value::Float64(-0.0),
            Value::Float64(f64::INFINITY),
            Value::Float64(f64::NEG_INFINITY),
        ][g.usize_in(0, 4)]
        .clone(),
    }
}

fn rand_rows(g: &mut Gen, cols: usize, n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|_| Tuple::new((0..cols).map(|_| rand_cell(g, true)).collect()))
        .collect()
}

/// Bit-exact value comparison: floats by raw bits, everything else by
/// `PartialEq`.
fn assert_cells_eq(a: &Value, b: &Value, ctx: &str) {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: float bits drifted")
        }
        _ => assert_eq!(a, b, "{ctx}"),
    }
}

/// `Page::seal` → `decode_rows` is the identity on arbitrary row sets, and
/// `Page::from_bytes` over the sealed bytes reproduces the content hash
/// under a fresh page id.
#[test]
fn page_encode_decode_is_identity() {
    for case in 0..CASES {
        let mut g = Gen::new(case.wrapping_add(0x7061_6765));
        let cols = g.usize_in(1, 5);
        let n = g.usize_in(0, 24);
        let rows = rand_rows(&mut g, cols, n);
        let page = Page::seal(cols, &rows);
        assert_eq!(page.num_rows(), rows.len(), "case {case}");
        assert_eq!(page.num_cols(), cols, "case {case}");
        let decoded = page.decode_rows().expect("sealed page decodes");
        assert_eq!(decoded.len(), rows.len(), "case {case}");
        for (i, (got, want)) in decoded.iter().zip(&rows).enumerate() {
            for (c, (x, y)) in got.values().iter().zip(want.values()).enumerate() {
                assert_cells_eq(x, y, &format!("case {case} row {i} col {c}"));
            }
        }
        // Adopting the raw bytes (the wire path) re-validates and re-hashes
        // to the same content under a process-fresh id.
        let adopted = Page::from_bytes(page.load_bytes().unwrap().to_vec()).expect("case: adopt");
        assert_eq!(adopted.content_hash(), page.content_hash(), "case {case}");
        assert_ne!(adopted.id(), page.id(), "case {case}: ids must be fresh");
    }
}

/// Scanning through a thrashing-small buffer pool yields exactly the rows
/// an unbounded pool yields — eviction trades decode work, never content —
/// and genuinely evicts whenever the table outspans the budget.
#[test]
fn tiny_budget_scans_are_bit_identical_to_unbounded() {
    for case in 0..CASES {
        let mut g = Gen::new(case.wrapping_add(0x6275_6467));
        let cols = g.usize_in(1, 4);
        let schema = Schema::new((0..cols).map(|i| Field::int64(format!("c{i}"))).collect());
        let n = g.usize_in(1, 60);
        let rows = rand_rows(&mut g, cols, n);
        let table = Table::with_page_budget(schema, rows, g.usize_in(24, 96)).unwrap();

        let unbounded = BufferPool::new(usize::MAX);
        let tiny = BufferPool::new(g.usize_in(1, 3));
        let a: Vec<Tuple> = table.iter_with(&unbounded).collect();
        let b: Vec<Tuple> = table.iter_with(&tiny).collect();
        assert_eq!(a.len(), b.len(), "case {case}");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            for (c, (vx, vy)) in x.values().iter().zip(y.values()).enumerate() {
                assert_cells_eq(vx, vy, &format!("case {case} row {i} col {c}"));
            }
        }
        if table.pages().len() > tiny.budget() {
            assert!(
                tiny.stats().pool_evictions > 0,
                "case {case}: {} pages over a {}-frame budget must evict",
                table.pages().len(),
                tiny.budget()
            );
        }
    }
}

/// Concurrent scans through one tiny pool keep the counters *exact*, not
/// merely monotone: every pin is classified as exactly one hit or one read
/// (a thread that loses the decode race still counts a hit — the frame it
/// pins was read by the winner), and the resident frame count equals
/// `pages_read - pool_evictions` at every quiescent point.  This is the
/// regression test for the windowing race where eviction-vs-re-read on two
/// scanning threads underreported reads.
#[test]
fn concurrent_scans_keep_pool_counters_exact() {
    const THREADS: usize = 4;
    for case in 0..CASES {
        let mut g = Gen::new(case.wrapping_add(0x6363_6e74));
        let cols = g.usize_in(1, 3);
        let schema = Schema::new((0..cols).map(|i| Field::int64(format!("c{i}"))).collect());
        let n = g.usize_in(8, 48);
        let rows = rand_rows(&mut g, cols, n);
        let table = Table::with_page_budget(schema, rows, g.usize_in(24, 64)).unwrap();
        let pages = table.pages().len();
        if pages < 2 {
            continue;
        }

        let pool = BufferPool::new(g.usize_in(1, 3));
        let reference: Vec<Tuple> = table.iter_with(&BufferPool::new(usize::MAX)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let pool = &pool;
                    let table = &table;
                    scope.spawn(move || table.iter_with(pool).collect::<Vec<Tuple>>())
                })
                .collect();
            for handle in handles {
                let scanned = handle.join().expect("scan thread panicked");
                assert_eq!(scanned.len(), reference.len(), "case {case}");
                for (i, (x, y)) in scanned.iter().zip(&reference).enumerate() {
                    for (c, (vx, vy)) in x.values().iter().zip(y.values()).enumerate() {
                        assert_cells_eq(vx, vy, &format!("case {case} row {i} col {c}"));
                    }
                }
            }
        });

        let stats = pool.stats();
        // Every (thread, page) pin is exactly one hit or one read.
        assert_eq!(
            stats.pages_read + stats.pool_hits,
            (THREADS * pages) as u64,
            "case {case}: {pages} pages × {THREADS} threads must classify every pin"
        );
        // Reads minus evictions is precisely what is still resident.
        assert_eq!(
            pool.resident_frames() as u64,
            stats.pages_read - stats.pool_evictions,
            "case {case}: resident = reads - evictions must be exact (stats {stats:?})"
        );
        assert!(
            stats.pages_read >= pages as u64,
            "case {case}: each page is decoded at least once"
        );
        if pages > pool.budget() {
            assert!(stats.pool_evictions > 0, "case {case}: pressure must evict");
        }
    }
}

/// A pinned frame survives arbitrary eviction pressure: scanning the whole
/// table through a 1-frame pool while a guard is held leaves the guarded
/// rows intact and bit-identical to a fresh decode of the page.
#[test]
fn pinned_frames_survive_eviction_pressure() {
    for case in 0..CASES {
        let mut g = Gen::new(case.wrapping_add(0x7069_6e73));
        let cols = g.usize_in(1, 3);
        let schema = Schema::new((0..cols).map(|i| Field::int64(format!("c{i}"))).collect());
        let n = g.usize_in(12, 40);
        let rows = rand_rows(&mut g, cols, n);
        // A budget this small guarantees several sealed pages.
        let table = Table::with_page_budget(schema, rows, 24).unwrap();
        if table.pages().len() < 2 {
            continue;
        }

        let pool = BufferPool::new(1);
        let pinned_page = &table.pages()[0];
        let guard = pool.pin(pinned_page).unwrap();
        // Full-scan pressure through the same 1-frame pool.
        let scanned = table.iter_with(&pool).count();
        assert_eq!(scanned, table.len(), "case {case}");
        assert!(pool.stats().pool_evictions > 0, "case {case}");
        // The guard still reads the exact sealed content.
        let fresh = pinned_page.decode_rows().unwrap();
        assert_eq!(guard.len(), fresh.len(), "case {case}");
        for (i, (got, want)) in guard.iter().zip(&fresh).enumerate() {
            for (c, (x, y)) in got.values().iter().zip(want.values()).enumerate() {
                assert_cells_eq(x, y, &format!("case {case} row {i} col {c}"));
            }
        }
        drop(guard);
    }
}
