//! Property-based tests (proptest) over the core invariants of the system:
//! quantile/order-statistic conventions, frequency tables, parameter theory
//! identities, TS-seed bookkeeping, and the purge/clone/perturb loop.

use mcdbr::core::params::{h_c, staged_parameters_with_m};
use mcdbr::core::{IndependentSumModel, ScalarCloner, TsSeed};
use mcdbr::mcdb::ResultDistribution;
use mcdbr::prng::Pcg64;
use mcdbr::risk::value_at_risk;
use mcdbr::vg::Distribution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The empirical quantile is monotone in the level and bracketed by the
    /// sample extremes.
    #[test]
    fn quantiles_are_monotone(mut samples in proptest::collection::vec(-1e6f64..1e6, 2..200),
                              q1 in 0.01f64..0.99, q2 in 0.01f64..0.99) {
        let dist = ResultDistribution::from_samples(&samples);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = dist.quantile(lo).unwrap();
        let b = dist.quantile(hi).unwrap();
        prop_assert!(a <= b);
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= samples[0] && b <= *samples.last().unwrap());
    }

    /// Frequency tables are proper probability vectors.
    #[test]
    fn frequency_tables_sum_to_one(samples in proptest::collection::vec(-100i64..100, 1..300)) {
        let floats: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        let dist = ResultDistribution::from_samples(&floats);
        let ft = dist.frequency_table(0.0);
        let total: f64 = ft.iter().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(ft.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// VaR never exceeds expected shortfall computed at the VaR threshold.
    #[test]
    fn var_below_expected_shortfall(samples in proptest::collection::vec(-1e3f64..1e3, 10..300),
                                    p in 0.01f64..0.5) {
        let var = value_at_risk(&samples, p).unwrap();
        let tail: Vec<f64> = samples.iter().copied().filter(|&x| x >= var).collect();
        let es = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!(es >= var - 1e-9);
    }

    /// Appendix C identities: the even split satisfies Σ nᵢ ≈ N, ∏ pᵢ = p and
    /// h_c stays within [p, 1].
    #[test]
    fn staged_parameter_identities(n_total in 20usize..5000, p in 0.0005f64..0.2, m in 1usize..8) {
        let m = m.min(n_total);
        let params = staged_parameters_with_m(n_total, p, m);
        let prod: f64 = params.step_probabilities().iter().product();
        prop_assert!((prod - p).abs() < 1e-9);
        let ns: Vec<f64> = params.step_sizes().iter().map(|&n| n as f64).collect();
        let ps = params.step_probabilities();
        for c in [1.0, 2.0] {
            let h = h_c(&ns, &ps, c);
            prop_assert!(h >= p - 1e-9 && h <= 1.0 + 1e-9, "h_c = {h}");
        }
    }

    /// TS-seed bookkeeping: assignments never reference unmaterialized
    /// positions after an extend, and cloning copies columns exactly.
    #[test]
    fn ts_seed_bookkeeping(num_versions in 1usize..16, ops in proptest::collection::vec((0usize..16, 0u64..500), 0..50)) {
        let mut ts = TsSeed::new(7, num_versions, 1_000);
        for (v, pos) in ops {
            let v = v % num_versions;
            ts.assign(v, pos);
            prop_assert!(ts.max_used >= pos);
            prop_assert!(ts.assigned(v) == pos);
        }
        let src = 0;
        for dst in 0..num_versions {
            ts.clone_version(dst, src);
        }
        prop_assert!((0..num_versions).all(|v| ts.assigned(v) == ts.assigned(src)));
    }

    /// The scalar Gibbs cloner's invariants hold for arbitrary light-tailed
    /// configurations: the requested number of tail samples comes back, every
    /// sample clears the final cutoff, and cutoffs are non-decreasing.
    #[test]
    fn cloner_invariants(r in 2usize..12, n_total in 40usize..200, m in 1usize..4,
                         l in 5usize..40, seed in 0u64..1000) {
        let model = IndependentSumModel::iid(Distribution::Normal { mean: 1.0, sd: 1.0 }, r);
        let cloner = ScalarCloner::new(model);
        let params = staged_parameters_with_m(n_total, 0.05, m);
        let report = cloner.run(&params, l, &mut Pcg64::new(seed));
        prop_assert_eq!(report.tail_samples.len(), l);
        prop_assert!(report.cutoffs.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        let cutoff = report.quantile_estimate;
        prop_assert!(report.tail_samples.iter().all(|&q| q >= cutoff - 1e-9));
    }
}
