//! Property-style tests over the core invariants of the system: quantile /
//! order-statistic conventions, frequency tables, parameter theory identities,
//! TS-seed bookkeeping, and the purge/clone/perturb loop.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these use a small seeded case generator over the repository's own
//! [`Pcg64`]: each property is checked for 64 pseudorandom configurations,
//! and every failure message carries the case seed so a case can be replayed
//! exactly.

use mcdbr::core::params::{h_c, staged_parameters_with_m};
use mcdbr::core::{IndependentSumModel, ScalarCloner, TsSeed};
use mcdbr::mcdb::ResultDistribution;
use mcdbr::prng::Pcg64;
use mcdbr::risk::value_at_risk;
use mcdbr::vg::Distribution;

const CASES: u64 = 64;

/// Deterministic case generator: uniform helpers over ranges.
struct Gen {
    rng: Pcg64,
}

impl Gen {
    fn new(case: u64) -> Self {
        Gen {
            rng: Pcg64::new(0x70726f70 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }

    fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.rng.next_u64() % (hi - lo)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64_open() * (hi - lo)
    }

    fn vec_f64(&mut self, len_lo: usize, len_hi: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// The empirical quantile is monotone in the level and bracketed by the
/// sample extremes.
#[test]
fn quantiles_are_monotone() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let mut samples = g.vec_f64(2, 200, -1e6, 1e6);
        let (q1, q2) = (g.f64_in(0.01, 0.99), g.f64_in(0.01, 0.99));
        let dist = ResultDistribution::from_samples(&samples);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = dist.quantile(lo).unwrap();
        let b = dist.quantile(hi).unwrap();
        assert!(
            a <= b,
            "case {case}: quantile({lo}) = {a} > quantile({hi}) = {b}"
        );
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!(
            a >= samples[0] && b <= *samples.last().unwrap(),
            "case {case}: quantiles escape the sample range"
        );
    }
}

/// Frequency tables are proper probability vectors with sorted support.
#[test]
fn frequency_tables_sum_to_one() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let len = g.usize_in(1, 300);
        let floats: Vec<f64> = (0..len)
            .map(|_| g.usize_in(0, 200) as f64 - 100.0)
            .collect();
        let dist = ResultDistribution::from_samples(&floats);
        let ft = dist.frequency_table(0.0);
        let total: f64 = ft.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total = {total}");
        assert!(
            ft.windows(2).all(|w| w[0].0 < w[1].0),
            "case {case}: frequency table support not sorted"
        );
    }
}

/// VaR never exceeds expected shortfall computed at the VaR threshold.
#[test]
fn var_below_expected_shortfall() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let samples = g.vec_f64(10, 300, -1e3, 1e3);
        let p = g.f64_in(0.01, 0.5);
        let var = value_at_risk(&samples, p).unwrap();
        let tail: Vec<f64> = samples.iter().copied().filter(|&x| x >= var).collect();
        let es = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(es >= var - 1e-9, "case {case}: ES {es} < VaR {var}");
    }
}

/// Appendix C identities: the even split satisfies ∏ pᵢ = p and h_c stays
/// within [p, 1].
#[test]
fn staged_parameter_identities() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let n_total = g.usize_in(20, 5000);
        let p = g.f64_in(0.0005, 0.2);
        let m = g.usize_in(1, 8).min(n_total);
        let params = staged_parameters_with_m(n_total, p, m);
        let prod: f64 = params.step_probabilities().iter().product();
        assert!(
            (prod - p).abs() < 1e-9,
            "case {case}: ∏ pᵢ = {prod} vs p = {p}"
        );
        let ns: Vec<f64> = params.step_sizes().iter().map(|&n| n as f64).collect();
        let ps = params.step_probabilities();
        for c in [1.0, 2.0] {
            let h = h_c(&ns, &ps, c);
            assert!(h >= p - 1e-9 && h <= 1.0 + 1e-9, "case {case}: h_c = {h}");
        }
    }
}

/// TS-seed bookkeeping: `max_used` tracks every assignment and cloning copies
/// columns exactly.
#[test]
fn ts_seed_bookkeeping() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let num_versions = g.usize_in(1, 16);
        let mut ts = TsSeed::new(7, num_versions, 1_000);
        let num_ops = g.usize_in(0, 50);
        for _ in 0..num_ops {
            let v = g.usize_in(0, 16) % num_versions;
            let pos = g.u64_in(0, 500);
            ts.assign(v, pos);
            assert!(ts.max_used >= pos, "case {case}: max_used fell behind");
            assert_eq!(ts.assigned(v), pos, "case {case}: assignment lost");
        }
        let src = 0;
        for dst in 0..num_versions {
            ts.clone_version(dst, src);
        }
        assert!(
            (0..num_versions).all(|v| ts.assigned(v) == ts.assigned(src)),
            "case {case}: clone_version did not copy the column"
        );
    }
}

/// The scalar Gibbs cloner's invariants hold for arbitrary light-tailed
/// configurations: the requested number of tail samples comes back, every
/// sample clears the final cutoff, and cutoffs are non-decreasing.
#[test]
fn cloner_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let r = g.usize_in(2, 12);
        let n_total = g.usize_in(40, 200);
        let m = g.usize_in(1, 4);
        let l = g.usize_in(5, 40);
        let seed = g.u64_in(0, 1000);
        let model = IndependentSumModel::iid(Distribution::Normal { mean: 1.0, sd: 1.0 }, r);
        let cloner = ScalarCloner::new(model);
        let params = staged_parameters_with_m(n_total, 0.05, m);
        let report = cloner.run(&params, l, &mut Pcg64::new(seed));
        assert_eq!(report.tail_samples.len(), l, "case {case}");
        assert!(
            report.cutoffs.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "case {case}: cutoffs decreased: {:?}",
            report.cutoffs
        );
        let cutoff = report.quantile_estimate;
        assert!(
            report.tail_samples.iter().all(|&q| q >= cutoff - 1e-9),
            "case {case}: tail sample below the final cutoff"
        );
    }
}
