//! Integration test for experiment E9: the §4.2 / Figure 1 worked example
//! (three customers, p = 1/32, n = 4, m = 5) plus the structural invariants
//! of the trace: non-decreasing cutoffs, per-step target quantiles, and final
//! samples that all lie in the estimated tail.

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::storage::{Catalog, Field, Schema, TableBuilder, Value};
use mcdbr::vg::math::std_normal_quantile;
use mcdbr::workloads::customer_losses_query;

fn figure1_catalog() -> Catalog {
    let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
        .row([Value::Int64(1), Value::Float64(3.0)])
        .row([Value::Int64(2), Value::Float64(4.0)])
        .row([Value::Int64(3), Value::Float64(5.0)])
        .build()
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("means", means).unwrap();
    catalog
}

#[test]
fn figure1_trace_structure() {
    let catalog = figure1_catalog();
    let config = TailSamplingConfig::new(1.0 / 32.0, 4, 20)
        .with_m(5)
        .with_block_size(64)
        .with_master_seed(2);
    let result = GibbsLooper::new(customer_losses_query(None), config)
        .run(&catalog)
        .unwrap();

    // m = 5 iterations, each halving the surviving probability (p^(1/m) = 1/2).
    assert_eq!(result.cutoffs.len(), 5);
    assert!((result.parameters.p_per_step - 0.5).abs() < 1e-12);
    for w in result.cutoffs.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "cutoffs must walk outward: {:?}",
            result.cutoffs
        );
    }
    // Four final DB versions, all at or above the final cutoff.
    assert_eq!(result.tail_samples.len(), 4);
    for &s in &result.tail_samples {
        assert!(s >= result.quantile_estimate - 1e-9);
    }
    // The estimate should be in the right ballpark of the analytic
    // 1 - 1/32 quantile of Normal(12, 3) — wide tolerance, tiny n.
    let analytic = 12.0 + 3f64.sqrt() * std_normal_quantile(1.0 - 1.0 / 32.0);
    assert!(
        (result.quantile_estimate - analytic).abs() < 2.5,
        "estimate {} vs analytic {analytic}",
        result.quantile_estimate
    );
}

#[test]
fn averaged_figure1_estimates_converge_to_the_analytic_quantile() {
    let catalog = figure1_catalog();
    let analytic = 12.0 + 3f64.sqrt() * std_normal_quantile(1.0 - 1.0 / 32.0);
    let runs = 30;
    let mut sum = 0.0;
    for run in 0..runs {
        let config = TailSamplingConfig::new(1.0 / 32.0, 4, 80)
            .with_m(5)
            .with_block_size(256)
            .with_master_seed(100 + run);
        let result = GibbsLooper::new(customer_losses_query(None), config)
            .run(&catalog)
            .unwrap();
        sum += result.quantile_estimate;
    }
    let mean = sum / runs as f64;
    assert!(
        (mean - analytic).abs() < 0.6,
        "mean estimate {mean} vs analytic {analytic}"
    );
}
